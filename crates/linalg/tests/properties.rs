//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use urs_linalg::{eigenvalues, Complex, LuDecomposition, Matrix, QuadraticEigenProblem};

/// Strategy: a well-conditioned-ish square matrix (diagonally boosted random entries).
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0_f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("dimensions match by construction");
        for i in 0..n {
            m[(i, i)] += 3.0 * (n as f64).sqrt();
        }
        m
    })
}

/// Strategy: an arbitrary (possibly ill-conditioned) square matrix.
fn arbitrary_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0_f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("dimensions match"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solving A x = b and multiplying back must reproduce b.
    #[test]
    fn lu_solve_round_trips(a in square_matrix(5), b in prop::collection::vec(-5.0_f64..5.0, 5)) {
        let x = a.solve(&b).expect("diagonally dominated matrix is invertible");
        let back = a.matvec(&x).unwrap();
        for (orig, rec) in b.iter().zip(back) {
            prop_assert!((orig - rec).abs() < 1e-8);
        }
    }

    /// det(A·B) = det(A)·det(B).
    #[test]
    fn determinant_is_multiplicative(a in square_matrix(4), b in square_matrix(4)) {
        let prod = a.matmul(&b).unwrap();
        let lhs = prod.determinant().unwrap();
        let rhs = a.determinant().unwrap() * b.determinant().unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
    }

    /// A · A⁻¹ = I for diagonally dominant matrices.
    #[test]
    fn inverse_round_trips(a in square_matrix(4)) {
        let inv = a.inverse().unwrap();
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(4), 1e-8));
    }

    /// The eigenvalue multiset must have sum = trace and product = determinant.
    #[test]
    fn eigenvalues_match_trace_and_determinant(a in arbitrary_matrix(6)) {
        let eig = eigenvalues(&a).unwrap();
        let sum: Complex = eig.iter().copied().sum();
        let tr = a.trace().unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!((sum.re - tr).abs() < 1e-7 * scale * 6.0, "sum {sum} vs trace {tr}");
        prop_assert!(sum.im.abs() < 1e-7 * scale * 6.0);
        let prod = eig.iter().fold(Complex::ONE, |acc, z| acc * *z);
        let det = a.determinant().unwrap();
        let det_scale = det.abs().max(scale.powi(6) * 1e-6).max(1.0);
        prop_assert!((prod.re - det).abs() < 1e-5 * det_scale, "prod {prod} vs det {det}");
    }

    /// Complex eigenvalues of real matrices come in conjugate pairs.
    #[test]
    fn complex_eigenvalues_pair_up(a in arbitrary_matrix(5)) {
        let eig = eigenvalues(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        for z in eig.iter().filter(|z| z.im.abs() > 1e-7 * scale) {
            let has_conjugate = eig.iter().any(|w| (*w - z.conj()).abs() < 1e-5 * scale);
            prop_assert!(has_conjugate, "no conjugate for {z} in {eig:?}");
        }
    }

    /// LU permutation/decomposition determinant is consistent with eigenvalue product.
    #[test]
    fn lu_determinant_finite(a in arbitrary_matrix(5)) {
        let lu = LuDecomposition::new_allow_singular(&a).unwrap();
        prop_assert!(lu.determinant().is_finite());
    }

    /// Every eigenvalue reported by the quadratic solver really makes det Q(z) small.
    #[test]
    fn quadratic_eigenvalues_satisfy_determinant(
        d0 in prop::collection::vec(0.5_f64..4.0, 3),
        d1 in prop::collection::vec(-6.0_f64..-1.0, 3),
    ) {
        let q0 = Matrix::from_diagonal(&d0);
        let q1 = Matrix::from_diagonal(&d1);
        let q2 = Matrix::identity(3);
        let problem = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let eig = problem.finite_eigenvalues().unwrap();
        prop_assert_eq!(eig.len(), 6);
        for e in eig {
            let det = problem.determinant_at(e.z).unwrap();
            prop_assert!(det.abs() < 1e-5, "det Q({}) = {}", e.z, det);
        }
    }

    /// Complex arithmetic: (a*b)/b == a.
    #[test]
    fn complex_field_axioms(ar in -10.0_f64..10.0, ai in -10.0_f64..10.0,
                            br in -10.0_f64..10.0, bi in -10.0_f64..10.0) {
        prop_assume!(br.abs() + bi.abs() > 1e-6);
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assert!(((a * b) / b - a).abs() < 1e-9 * a.abs().max(1.0));
        prop_assert!(((a + b) - b - a).abs() < 1e-12);
    }

    /// sqrt(z)² == z on a wide range of inputs.
    #[test]
    fn complex_sqrt_roundtrip(re in -100.0_f64..100.0, im in -100.0_f64..100.0) {
        let z = Complex::new(re, im);
        let s = z.sqrt();
        prop_assert!((s * s - z).abs() < 1e-10 * z.abs().max(1.0));
    }
}
