//! Property-based tests for the linear-algebra kernels.
//!
//! Besides the structural properties (round trips, determinant identities), this suite
//! pins the *blocked* production kernels — tiled [`Matrix::gemm`]/[`CMatrix::gemm`] and
//! the panel-blocked LU — against naive reference implementations written out in this
//! file, to a relative tolerance of `1e-12`.

use proptest::prelude::*;
use urs_linalg::{
    eigenvalues, BandedLu, BandedMatrix, CBandedLu, CBandedMatrix, CMatrix, CluDecomposition,
    Complex, LinalgError, LuDecomposition, Matrix, QuadraticEigenProblem, ThreadPool, Workspace,
};

/// Naive O(n³) triple-loop reference product, independent of the tiled kernel.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut sum = 0.0;
            for k in 0..a.cols() {
                sum += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = sum;
        }
    }
    out
}

/// Naive complex reference product.
fn naive_cmatmul(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut sum = Complex::ZERO;
            for k in 0..a.cols() {
                sum += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = sum;
        }
    }
    out
}

/// Deterministic LCG in [-0.5, 0.5); the single source of pseudo-randomness for the
/// kernel-equivalence tests below.
fn lcg(mut state: u64) -> impl FnMut() -> f64 {
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }
}

/// Max relative elementwise deviation between two equally-shaped matrices.
fn max_rel_diff(a: &Matrix, b: &Matrix) -> f64 {
    let scale = a.max_abs().max(b.max_abs()).max(1.0);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / scale)
        .fold(0.0_f64, f64::max)
}

/// Strategy: a well-conditioned-ish square matrix (diagonally boosted random entries).
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0_f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("dimensions match by construction");
        for i in 0..n {
            m[(i, i)] += 3.0 * (n as f64).sqrt();
        }
        m
    })
}

/// Strategy: an arbitrary (possibly ill-conditioned) square matrix.
fn arbitrary_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0_f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("dimensions match"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solving A x = b and multiplying back must reproduce b.
    #[test]
    fn lu_solve_round_trips(a in square_matrix(5), b in prop::collection::vec(-5.0_f64..5.0, 5)) {
        let x = a.solve(&b).expect("diagonally dominated matrix is invertible");
        let back = a.matvec(&x).unwrap();
        for (orig, rec) in b.iter().zip(back) {
            prop_assert!((orig - rec).abs() < 1e-8);
        }
    }

    /// det(A·B) = det(A)·det(B).
    #[test]
    fn determinant_is_multiplicative(a in square_matrix(4), b in square_matrix(4)) {
        let prod = a.matmul(&b).unwrap();
        let lhs = prod.determinant().unwrap();
        let rhs = a.determinant().unwrap() * b.determinant().unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
    }

    /// A · A⁻¹ = I for diagonally dominant matrices.
    #[test]
    fn inverse_round_trips(a in square_matrix(4)) {
        let inv = a.inverse().unwrap();
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(4), 1e-8));
    }

    /// The eigenvalue multiset must have sum = trace and product = determinant.
    #[test]
    fn eigenvalues_match_trace_and_determinant(a in arbitrary_matrix(6)) {
        let eig = eigenvalues(&a).unwrap();
        let sum: Complex = eig.iter().copied().sum();
        let tr = a.trace().unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!((sum.re - tr).abs() < 1e-7 * scale * 6.0, "sum {sum} vs trace {tr}");
        prop_assert!(sum.im.abs() < 1e-7 * scale * 6.0);
        let prod = eig.iter().fold(Complex::ONE, |acc, z| acc * *z);
        let det = a.determinant().unwrap();
        let det_scale = det.abs().max(scale.powi(6) * 1e-6).max(1.0);
        prop_assert!((prod.re - det).abs() < 1e-5 * det_scale, "prod {prod} vs det {det}");
    }

    /// Complex eigenvalues of real matrices come in conjugate pairs.
    #[test]
    fn complex_eigenvalues_pair_up(a in arbitrary_matrix(5)) {
        let eig = eigenvalues(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        for z in eig.iter().filter(|z| z.im.abs() > 1e-7 * scale) {
            let has_conjugate = eig.iter().any(|w| (*w - z.conj()).abs() < 1e-5 * scale);
            prop_assert!(has_conjugate, "no conjugate for {z} in {eig:?}");
        }
    }

    /// LU permutation/decomposition determinant is consistent with eigenvalue product.
    #[test]
    fn lu_determinant_finite(a in arbitrary_matrix(5)) {
        let lu = LuDecomposition::new_allow_singular(&a).unwrap();
        prop_assert!(lu.determinant().is_finite());
    }

    /// Every eigenvalue reported by the quadratic solver really makes det Q(z) small.
    #[test]
    fn quadratic_eigenvalues_satisfy_determinant(
        d0 in prop::collection::vec(0.5_f64..4.0, 3),
        d1 in prop::collection::vec(-6.0_f64..-1.0, 3),
    ) {
        let q0 = Matrix::from_diagonal(&d0);
        let q1 = Matrix::from_diagonal(&d1);
        let q2 = Matrix::identity(3);
        let problem = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let eig = problem.finite_eigenvalues().unwrap();
        prop_assert_eq!(eig.len(), 6);
        for e in eig {
            let det = problem.determinant_at(e.z).unwrap();
            prop_assert!(det.abs() < 1e-5, "det Q({}) = {}", e.z, det);
        }
    }

    /// Complex arithmetic: (a*b)/b == a.
    #[test]
    fn complex_field_axioms(ar in -10.0_f64..10.0, ai in -10.0_f64..10.0,
                            br in -10.0_f64..10.0, bi in -10.0_f64..10.0) {
        prop_assume!(br.abs() + bi.abs() > 1e-6);
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assert!(((a * b) / b - a).abs() < 1e-9 * a.abs().max(1.0));
        prop_assert!(((a + b) - b - a).abs() < 1e-12);
    }

    /// sqrt(z)² == z on a wide range of inputs.
    #[test]
    fn complex_sqrt_roundtrip(re in -100.0_f64..100.0, im in -100.0_f64..100.0) {
        let z = Complex::new(re, im);
        let s = z.sqrt();
        prop_assert!((s * s - z).abs() < 1e-10 * z.abs().max(1.0));
    }

    /// The tiled gemm kernel agrees with the naive triple loop on rectangular shapes
    /// (≤ 1e-12 relative), including shapes that cross the tile boundaries.
    #[test]
    fn blocked_gemm_matches_naive_product(
        m in 1usize..12, k in 1usize..70, n in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493));
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        prop_assert!(max_rel_diff(&fast, &slow) <= 1e-12);
    }

    /// gemm's accumulate form: C ← α·A·B + β·C equals the same expression assembled
    /// from allocating operations.
    #[test]
    fn gemm_accumulate_matches_composed_expression(
        n in 1usize..10, alpha in -2.0_f64..2.0, beta in -2.0_f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed | 1);
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b = Matrix::from_fn(n, n, |_, _| next());
        let c0 = Matrix::from_fn(n, n, |_, _| next());
        let mut c = c0.clone();
        c.gemm(alpha, &a, &b, beta).unwrap();
        let reference = &naive_matmul(&a, &b).scale(alpha) + &c0.scale(beta);
        prop_assert!(max_rel_diff(&c, &reference) <= 1e-12);
    }

    /// The tiled complex gemm agrees with the naive reference (≤ 1e-12 relative).
    #[test]
    fn blocked_complex_gemm_matches_naive_product(
        m in 1usize..8, k in 1usize..40, n in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(2862933555777941757).wrapping_add(97));
        let a = CMatrix::from_fn(m, k, |_, _| Complex::new(next(), next()));
        let b = CMatrix::from_fn(k, n, |_, _| Complex::new(next(), next()));
        let fast = a.matmul(&b).unwrap();
        let slow = naive_cmatmul(&a, &b);
        let scale = fast.max_abs().max(slow.max_abs()).max(1.0);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((fast[(i, j)] - slow[(i, j)]).abs() / scale <= 1e-12);
            }
        }
    }

    /// The blocked LU reproduces P·A = L·U across the panel boundary and its solves
    /// agree with the solution reconstructed through the explicit inverse.
    #[test]
    fn blocked_lu_matches_naive_reference(size in 1usize..70, seed in 0u64..1_000_000) {
        let mut next = lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mut a = Matrix::from_fn(size, size, |_, _| next());
        for i in 0..size {
            a[(i, i)] += 4.0; // keep it comfortably invertible
        }
        let lu = LuDecomposition::new(&a).unwrap();
        let b: Vec<f64> = (0..size).map(|_| next()).collect();
        let x = lu.solve(&b).unwrap();
        // Naive check: A·x must reproduce b.
        let back = a.matvec(&x).unwrap();
        let scale = b.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (orig, rec) in b.iter().zip(back) {
            prop_assert!((orig - rec).abs() / scale <= 1e-10);
        }
        // Multi-RHS and right-division solves agree with the vector solve.
        let rhs = Matrix::from_fn(size, 3, |_, _| next());
        let xs = lu.solve_matrix(&rhs).unwrap();
        for col in 0..3 {
            let xcol = lu.solve(&rhs.column(col)).unwrap();
            for (i, v) in xcol.iter().enumerate() {
                prop_assert!((xs[(i, col)] - v).abs() <= 1e-12 * v.abs().max(1.0));
            }
        }
        let brow = Matrix::from_fn(2, size, |_, _| next());
        let mut ws = Workspace::new();
        let mut xr = Matrix::zeros(2, size);
        lu.solve_right_matrix_into(&brow, &mut xr, &mut ws).unwrap();
        let recovered = xr.matmul(&a).unwrap();
        prop_assert!(max_rel_diff(&recovered, &brow) <= 1e-9);
    }

    /// Same as above but on matrices engineered so that partial pivoting MUST
    /// interchange rows at (almost) every elimination step, across panel boundaries:
    /// element magnitudes grow down each column, so the pivot is never already in
    /// place.  Exercises the full-row swaps of the blocked panels and the final
    /// permutation scatter of `solve_right_matrix_into`.
    #[test]
    fn blocked_lu_with_forced_pivoting(size in 2usize..70, seed in 0u64..1_000_000) {
        let mut next = lcg(seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(5));
        // Base magnitude 2^(row) keeps lower rows strictly dominant in every column,
        // forcing a swap at each step; the random factor keeps the matrix generic.
        let a = Matrix::from_fn(size, size, |i, _| {
            (1.0 + next().abs()) * (1.5_f64).powi(i as i32)
                * if next() > 0.0 { 1.0 } else { -1.0 }
        });
        let lu = match LuDecomposition::new(&a) {
            Ok(lu) => lu,
            Err(_) => return Ok(()), // a random sign pattern may be (near) singular
        };
        let b: Vec<f64> = (0..size).map(|_| next()).collect();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        let scale = a.max_abs().max(1.0);
        for (orig, rec) in b.iter().zip(back) {
            prop_assert!((orig - rec).abs() <= 1e-8 * scale);
        }
        let brow = Matrix::from_fn(2, size, |_, _| next());
        let mut ws = Workspace::new();
        let mut xr = Matrix::zeros(2, size);
        lu.solve_right_matrix_into(&brow, &mut xr, &mut ws).unwrap();
        let recovered = xr.matmul(&a).unwrap();
        prop_assert!(max_rel_diff(&recovered, &brow) <= 1e-8);
    }
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial bit-identity under random shapes.  The pooled kernels
// promise `f64::to_bits` equality with the serial path for *every* shape —
// degenerate 1×k and k×1 strips, empty matrices, and dimensions that are not
// multiples of the gemm tiles or LU panels — at every thread count.
// ---------------------------------------------------------------------------

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn cmatrix_bits(m: &CMatrix) -> Vec<(u64, u64)> {
    m.as_slice().iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled gemm is bitwise-equal to serial gemm on arbitrary shapes, including
    /// empty and single-row/column operands and β/α special cases.
    #[test]
    fn parallel_gemm_is_bitwise_equal_to_serial(
        m in 0usize..40, k in 0usize..90, n in 0usize..40,
        threads in 2usize..9,
        alpha_case in 0usize..4,
        beta_case in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        // Cover the β = 0 fill, β = 1 accumulate, and α = 0 early-return branches.
        let alpha = [0.0, 1.0, 0.75, -1.3][alpha_case];
        let beta = [0.0, 1.0, -0.5, 2.0][beta_case];
        let mut next = lcg(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7));
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c0 = Matrix::from_fn(m, n, |_, _| next());
        let mut serial = c0.clone();
        serial.gemm(alpha, &a, &b, beta).unwrap();
        let mut pooled = c0.clone();
        pooled.gemm_with(alpha, &a, &b, beta, &ThreadPool::new(threads)).unwrap();
        prop_assert_eq!(matrix_bits(&serial), matrix_bits(&pooled));
    }

    /// Same contract for the complex gemm kernel.
    #[test]
    fn parallel_complex_gemm_is_bitwise_equal_to_serial(
        m in 0usize..24, k in 0usize..50, n in 0usize..24,
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(3));
        let a = CMatrix::from_fn(m, k, |_, _| Complex::new(next(), next()));
        let b = CMatrix::from_fn(k, n, |_, _| Complex::new(next(), next()));
        let c0 = CMatrix::from_fn(m, n, |_, _| Complex::new(next(), next()));
        let alpha = Complex::new(next(), next());
        let beta = Complex::new(next(), next());
        let mut serial = c0.clone();
        serial.gemm(alpha, &a, &b, beta).unwrap();
        let mut pooled = c0.clone();
        pooled.gemm_with(alpha, &a, &b, beta, &ThreadPool::new(threads)).unwrap();
        prop_assert_eq!(cmatrix_bits(&serial), cmatrix_bits(&pooled));
    }

    /// Pooled blocked LU produces the bitwise-identical packed factor, permutation
    /// effects (via solves), and right-solves as the serial path, for sizes on and
    /// off the 48-column panel boundary.
    #[test]
    fn parallel_lu_is_bitwise_equal_to_serial(
        size in 1usize..90,
        rhs_rows in 1usize..4,
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11));
        let mut a = Matrix::from_fn(size, size, |_, _| next());
        for i in 0..size {
            a[(i, i)] += 4.0;
        }
        let pool = ThreadPool::new(threads);
        let serial = LuDecomposition::from_matrix(a.clone()).unwrap();
        let pooled = LuDecomposition::from_matrix_with(a.clone(), &pool).unwrap();
        prop_assert_eq!(serial.determinant().to_bits(), pooled.determinant().to_bits());
        let brow = Matrix::from_fn(rhs_rows, size, |_, _| next());
        let mut ws = Workspace::new();
        let mut serial_x = Matrix::zeros(rhs_rows, size);
        serial.solve_right_matrix_into(&brow, &mut serial_x, &mut ws).unwrap();
        let mut pooled_x = Matrix::zeros(rhs_rows, size);
        pooled.solve_right_matrix_into_with(&brow, &mut pooled_x, &mut ws, &pool).unwrap();
        prop_assert_eq!(matrix_bits(&serial_x), matrix_bits(&pooled_x));
        let serial_packed = serial.into_matrix();
        let pooled_packed = pooled.into_matrix();
        prop_assert_eq!(matrix_bits(&serial_packed), matrix_bits(&pooled_packed));
    }

    /// Same contract for the complex blocked LU (24-column panels).
    #[test]
    fn parallel_complex_lu_is_bitwise_equal_to_serial(
        size in 1usize..60,
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(13));
        let a = CMatrix::from_fn(size, size, |i, j| {
            let v = Complex::new(next(), next());
            if i == j {
                v + Complex::from_real(4.0)
            } else {
                v
            }
        });
        let pool = ThreadPool::new(threads);
        let serial = CluDecomposition::from_matrix(a.clone()).unwrap();
        let pooled = CluDecomposition::from_matrix_with(a.clone(), &pool).unwrap();
        prop_assert_eq!(serial.smallest_pivot().to_bits(), pooled.smallest_pivot().to_bits());
        prop_assert_eq!(
            cmatrix_bits(&serial.into_matrix()),
            cmatrix_bits(&pooled.into_matrix())
        );
    }

    /// A singular matrix must fail identically through the serial and pooled paths:
    /// same `LinalgError::Singular { pivot }`, independent of the thread count.
    #[test]
    fn parallel_lu_reports_identical_singular_pivots(
        size in 2usize..70,
        dup in 0usize..69,
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let dead = dup % size;
        let mut next = lcg(seed.wrapping_mul(0x5DEECE66D).wrapping_add(0xB));
        // Zero out one column: row operations subtract exact zeros from it, so its
        // pivot is exactly 0.0 regardless of banding, and the elimination (being
        // bit-identical) detects singularity at the same step at any thread count.
        let mut a = Matrix::from_fn(size, size, |_, _| next());
        for i in 0..size {
            a[(i, i)] += 4.0;
            a[(i, dead)] = 0.0;
        }
        let serial = LuDecomposition::from_matrix(a.clone());
        let pooled = LuDecomposition::from_matrix_with(a.clone(), &ThreadPool::new(threads));
        match (serial, pooled) {
            (Err(se), Err(pe)) => {
                prop_assert_eq!(&se, &LinalgError::Singular { pivot: dead });
                prop_assert_eq!(se, pe);
            }
            (s, p) => prop_assert!(false, "expected Singular from both, got {s:?} / {p:?}"),
        }
        // The tolerant constructors agree on the singularity flag and the factor.
        let serial = LuDecomposition::new_allow_singular(&a).unwrap();
        let pooled =
            LuDecomposition::new_allow_singular_with(&a, &ThreadPool::new(threads)).unwrap();
        prop_assert_eq!(serial.is_singular(), pooled.is_singular());
        prop_assert_eq!(
            matrix_bits(&serial.into_matrix()),
            matrix_bits(&pooled.into_matrix())
        );
    }
}

// ---------------------------------------------------------------------------
// Banded-vs-dense bit-identity under random bandwidths.  The packed banded
// kernels promise `to_bits` equality with the dense path on the same nonzero
// pattern — for every bandwidth from diagonal (kl = ku = 0) through full
// (kl = ku = n − 1), on sizes off the dense tile/panel boundaries, real and
// complex, for gemm, matvec, LU factor/solve, and singularity reporting.
// (Caveat pinned by the kernels' docs: inputs here avoid −0.0 and subnormals,
// where "skip exact zeros" short-cuts could legally differ in sign-of-zero.)
// ---------------------------------------------------------------------------

/// Map a raw proptest draw to a bandwidth, biased so the degenerate diagonal
/// and full-bandwidth cases come up often.
fn pick_bandwidth(case: usize, raw: usize, n: usize) -> usize {
    match case {
        0 => 0,
        1 => n.saturating_sub(1),
        _ => raw % n,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Banded matvec and gemm are bitwise-equal to the dense kernels applied to
    /// the unpacked matrix, at any bandwidth.
    #[test]
    fn banded_matvec_and_gemm_bitwise_equal_dense(
        n in 1usize..40,
        kl_case in 0usize..4, kl_raw in 0usize..64,
        ku_case in 0usize..4, ku_raw in 0usize..64,
        cols in 1usize..6,
        alpha_case in 0usize..3, beta_case in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let kl = pick_bandwidth(kl_case, kl_raw, n);
        let ku = pick_bandwidth(ku_case, ku_raw, n);
        // β = 0 is excluded: the dense accumulate form overwrites C there while
        // the banded kernel scales it, which may legally differ on sign-of-zero.
        let alpha = [1.5, 0.75, -1.3][alpha_case];
        let beta = [1.0, 0.5, -0.5][beta_case];
        let mut next = lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17));
        let a = BandedMatrix::from_fn(n, kl, ku, |i, j| {
            let v = next();
            if i == j { v + 4.0 } else { v }
        });
        let dense = a.to_dense();
        let v: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0; n];
        a.matvec_into(&v, &mut y).unwrap();
        let yd = dense.matvec(&v).unwrap();
        for (b, d) in y.iter().zip(&yd) {
            prop_assert_eq!(b.to_bits(), d.to_bits());
        }
        let b = Matrix::from_fn(n, cols, |_, _| next());
        let mut c = Matrix::from_fn(n, cols, |_, _| next());
        let mut cd = c.clone();
        a.gemm_into(alpha, &b, beta, &mut c).unwrap();
        cd.gemm(alpha, &dense, &b, beta).unwrap();
        prop_assert_eq!(matrix_bits(&c), matrix_bits(&cd));
    }

    /// Banded LU factorisation and its solves are bitwise-equal to the dense
    /// blocked LU on the unpacked matrix, including sizes past the dense
    /// 48-column panel so the comparison crosses panel boundaries.
    #[test]
    fn banded_lu_bitwise_equal_dense(
        n in 1usize..70,
        kl_case in 0usize..4, kl_raw in 0usize..64,
        ku_case in 0usize..4, ku_raw in 0usize..64,
        cols in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let kl = pick_bandwidth(kl_case, kl_raw, n);
        let ku = pick_bandwidth(ku_case, ku_raw, n);
        let mut next = lcg(seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(19));
        let a = BandedMatrix::from_fn(n, kl, ku, |i, j| {
            let v = next();
            if i == j { v + 4.0 } else { v }
        });
        let dense = a.to_dense();
        let blu = a.lu().unwrap();
        let dlu = LuDecomposition::new(&dense).unwrap();
        prop_assert_eq!(blu.determinant().to_bits(), dlu.determinant().to_bits());
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut xb = vec![0.0; n];
        let mut xd = vec![0.0; n];
        blu.solve_into(&b, &mut xb).unwrap();
        dlu.solve_into(&b, &mut xd).unwrap();
        for (p, q) in xb.iter().zip(&xd) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
        let bm = Matrix::from_fn(n, cols, |_, _| next());
        let mut ob = Matrix::zeros(n, cols);
        let mut od = Matrix::zeros(n, cols);
        blu.solve_matrix_into(&bm, &mut ob).unwrap();
        dlu.solve_matrix_into(&bm, &mut od).unwrap();
        prop_assert_eq!(matrix_bits(&ob), matrix_bits(&od));
    }

    /// An exactly-zero column inside the band must fail identically through the
    /// banded and dense factorisations: the same `Singular { pivot }` step, and
    /// the same singularity flag from the tolerant constructors.
    #[test]
    fn banded_lu_singular_pivot_parity(
        n in 2usize..40,
        kl_raw in 0usize..64, ku_raw in 0usize..64,
        dead_raw in 0usize..64,
        seed in 0u64..1_000_000,
    ) {
        let kl = kl_raw % n;
        let ku = ku_raw % n;
        let dead = dead_raw % n;
        let mut next = lcg(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(23));
        // Column `dead` is exactly zero: eliminations subtract exact zeros from
        // it, so both paths hit a 0.0 pivot at the same deterministic step.
        let a = BandedMatrix::from_fn(n, kl, ku, |i, j| {
            if j == dead {
                0.0
            } else {
                let v = next();
                if i == j { v + 4.0 } else { v }
            }
        });
        let dense = a.to_dense();
        let be = BandedLu::new(&a).unwrap_err();
        let de = LuDecomposition::new(&dense).unwrap_err();
        prop_assert!(matches!(be, LinalgError::Singular { .. }), "banded: {be:?}");
        prop_assert_eq!(&be, &de);
        let blu = BandedLu::new_allow_singular(&a).unwrap();
        let dlu = LuDecomposition::new_allow_singular(&dense).unwrap();
        prop_assert_eq!(blu.is_singular(), dlu.is_singular());
        prop_assert!(blu.is_singular());
        prop_assert_eq!(blu.determinant().to_bits(), dlu.determinant().to_bits());
    }

    /// The complex packed kernels carry the same contract: matvec, factor,
    /// determinant, pivot floor, and solves bitwise-equal to the dense complex
    /// LU at any bandwidth.
    #[test]
    fn cbanded_kernels_bitwise_equal_dense(
        n in 1usize..40,
        kl_case in 0usize..4, kl_raw in 0usize..64,
        ku_case in 0usize..4, ku_raw in 0usize..64,
        seed in 0u64..1_000_000,
    ) {
        let kl = pick_bandwidth(kl_case, kl_raw, n);
        let ku = pick_bandwidth(ku_case, ku_raw, n);
        let mut next = lcg(seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(29));
        let a = CBandedMatrix::from_fn(n, kl, ku, |i, j| {
            let z = Complex::new(next(), next());
            if i == j { z + Complex::from_real(4.0) } else { z }
        });
        let dense = a.to_dense();
        let v: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let mut y = vec![Complex::ZERO; n];
        a.matvec_into(&v, &mut y).unwrap();
        let yd = dense.matvec(&v).unwrap();
        for (b, d) in y.iter().zip(&yd) {
            prop_assert_eq!(b.re.to_bits(), d.re.to_bits());
            prop_assert_eq!(b.im.to_bits(), d.im.to_bits());
        }
        let blu = CBandedLu::new(&a).unwrap();
        let dlu = CluDecomposition::new(&dense).unwrap();
        prop_assert_eq!(blu.smallest_pivot().to_bits(), dlu.smallest_pivot().to_bits());
        let (db, dd) = (blu.determinant(), dlu.determinant());
        prop_assert_eq!(db.re.to_bits(), dd.re.to_bits());
        prop_assert_eq!(db.im.to_bits(), dd.im.to_bits());
        let b: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let mut xb = vec![Complex::ZERO; n];
        let mut xd = vec![Complex::ZERO; n];
        blu.solve_into(&b, &mut xb).unwrap();
        dlu.solve_into(&b, &mut xd).unwrap();
        for (p, q) in xb.iter().zip(&xd) {
            prop_assert_eq!(p.re.to_bits(), q.re.to_bits());
            prop_assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }
}

proptest! {
    // Each case runs a full quadratic eigensolve; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On paper-shaped (QBD-like tridiagonal) pencils the shifted inverse
    /// iteration behind `left_eigenvector` must agree with the dense null-space
    /// extraction: same direction up to a complex scalar, small residual.
    #[test]
    fn inverse_iteration_matches_dense_null_space(
        s in 8usize..13,
        lambda in 0.5_f64..3.0,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed.wrapping_mul(0x5DEECE66D).wrapping_add(31));
        // Q(z) = Q0 + Q1 z + Q2 z² with diagonal Q0/Q2 and tridiagonal Q1 whose
        // rows sum to zero at z = 1 — the shape every QBD in the paper takes.
        let q0 = Matrix::from_diagonal(&vec![lambda; s]);
        let q2 = Matrix::from_diagonal(
            &(0..s).map(|_| 0.3 + next().abs() * 2.0).collect::<Vec<_>>(),
        );
        let up: Vec<f64> = (0..s).map(|_| 0.2 + next().abs()).collect();
        let down: Vec<f64> = (0..s).map(|_| 0.2 + next().abs()).collect();
        let q1 = Matrix::from_fn(s, s, |i, j| {
            if j == i + 1 {
                up[i]
            } else if i > 0 && j == i - 1 {
                down[i]
            } else if i == j {
                let mut d = -(lambda + q2[(i, i)]);
                if i + 1 < s {
                    d -= up[i];
                }
                if i > 0 {
                    d -= down[i];
                }
                d
            } else {
                0.0
            }
        });
        let problem = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        prop_assert!(problem.uses_banded_extraction());
        let eig = problem.finite_eigenvalues().unwrap();
        let max_mod = eig.iter().map(|e| e.z.abs()).fold(1.0_f64, f64::max);
        for e in &eig {
            // Skip clustered eigenvalues: near-degenerate null spaces make the
            // extracted direction legitimately method-dependent.
            let separation = eig
                .iter()
                .filter(|o| (o.z - e.z).abs() > 0.0)
                .map(|o| (o.z - e.z).abs())
                .fold(f64::INFINITY, f64::min);
            if separation < 1e-3 * max_mod {
                continue;
            }
            let v = problem.left_eigenvector(e.z).unwrap();
            let scale = problem.evaluate(e.z).max_abs();
            prop_assert!(
                problem.residual(e.z, &v).unwrap() <= 1e-7 * scale,
                "residual too large at z = {}", e.z
            );
            let w = CluDecomposition::new_allow_singular(&problem.evaluate(e.z))
                .unwrap()
                .left_null_vector()
                .unwrap();
            // Both vectors have unit max modulus; align phases at v's peak.
            let peak = (0..s).max_by(|&a, &b| v[a].abs().total_cmp(&v[b].abs())).unwrap();
            let ratio = w[peak] / v[peak];
            for (a, b) in v.iter().zip(&w) {
                prop_assert!(
                    (*b - ratio * *a).abs() <= 1e-6,
                    "direction mismatch at z = {}", e.z
                );
            }
        }
    }
}

/// Deterministic pivot-forcing case: an anti-diagonally dominant matrix whose LU
/// permutation is the full row reversal, bigger than one panel so the swaps cross
/// panel boundaries; checks the factorisation, both left solves and the right solve.
#[test]
fn row_reversing_permutation_across_panels() {
    let n = 61; // > PANEL (48): the permutation spans two panels
    let a = Matrix::from_fn(n, n, |i, j| {
        if i + j == n - 1 {
            10.0 + i as f64
        } else {
            1.0 / (1.0 + (i + 2 * j) as f64)
        }
    });
    let lu = LuDecomposition::new(&a).unwrap();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
    let x = lu.solve(&b).unwrap();
    let back = a.matvec(&x).unwrap();
    for (orig, rec) in b.iter().zip(back) {
        assert!((orig - rec).abs() < 1e-9, "{orig} vs {rec}");
    }
    let rhs = Matrix::from_fn(n, 2, |i, j| ((i * 3 + j) as f64 * 0.11).sin());
    let xs = lu.solve_matrix(&rhs).unwrap();
    let rec = a.matmul(&xs).unwrap();
    assert!(max_rel_diff(&rec, &rhs) < 1e-9);
    let brow = Matrix::from_fn(2, n, |i, j| ((i + 5 * j) as f64 * 0.07).cos());
    let mut ws = Workspace::new();
    let mut xr = Matrix::zeros(2, n);
    lu.solve_right_matrix_into(&brow, &mut xr, &mut ws).unwrap();
    let recovered = xr.matmul(&a).unwrap();
    assert!(max_rel_diff(&recovered, &brow) < 1e-9);
}
