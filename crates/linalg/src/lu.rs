//! LU factorisation with partial pivoting for real matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// An LU factorisation `P·A = L·U` of a square real matrix with partial (row) pivoting.
///
/// The factors are stored compactly: the strictly lower triangle of `lu` holds the
/// multipliers of `L` (whose diagonal is implicitly 1) and the upper triangle holds `U`.
///
/// # Example
///
/// ```
/// use urs_linalg::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0][..], &[6.0, 3.0][..]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// permutation: row `i` of the factorised matrix corresponds to row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// sign of the permutation (+1.0 or -1.0); used for the determinant.
    perm_sign: f64,
    /// `true` if a pivot underflowed to (effectively) zero.
    singular_at: Option<usize>,
}

/// Relative threshold below which a pivot is considered zero.
const PIVOT_EPS: f64 = 1e-300;

impl LuDecomposition {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::InvalidInput`] if the matrix contains non-finite values, and
    /// [`LinalgError::Singular`] when the matrix is singular to working precision.
    pub fn new(a: &Matrix) -> Result<Self> {
        let lu = Self::new_allow_singular(a)?;
        if let Some(pivot) = lu.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        Ok(lu)
    }

    /// Factorises a square matrix, tolerating exactly singular input.
    ///
    /// The resulting decomposition can still be used for [`determinant`](Self::determinant)
    /// (which will be 0), but [`solve`](Self::solve) and [`inverse`](Self::inverse) will
    /// return [`LinalgError::Singular`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::InvalidInput`].
    pub fn new_allow_singular(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular_at = None;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            if pivot.abs() < PIVOT_EPS {
                if singular_at.is_none() {
                    singular_at = Some(k);
                }
                continue;
            }
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let delta = factor * lu[(k, j)];
                        lu[(i, j)] -= delta;
                    }
                }
            }
        }
        Ok(LuDecomposition { lu, perm, perm_sign, singular_at })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Returns `true` if the matrix was found to be singular.
    pub fn is_singular(&self) -> bool {
        self.singular_at.is_some()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        if self.singular_at.is_some() {
            return 0.0;
        }
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length, or
    /// [`LinalgError::Singular`] if the matrix was singular.
    #[allow(clippy::needless_range_loop)] // triangular solves read x[j] while writing x[i]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if let Some(pivot) = self.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus a dimension check on `B`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU matrix solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for col in 0..b.cols() {
            let rhs = b.column(col);
            let x = self.solve(&rhs)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, col)] = v;
            }
        }
        Ok(out)
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(lu: &LuDecomposition, n: usize) -> Matrix {
        // Rebuild P^T * L * U to compare against A.
        let mut l = Matrix::identity(n);
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    l[(i, j)] = lu.lu[(i, j)];
                } else {
                    u[(i, j)] = lu.lu[(i, j)];
                }
            }
        }
        let plu = l.matmul(&u).unwrap();
        // Undo the permutation: row i of PLU equals row perm[i] of A.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(lu.perm[i], j)] = plu[(i, j)];
            }
        }
        a
    }

    #[test]
    fn factorisation_reconstructs_original() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 1.0][..],
            &[4.0, -6.0, 0.0][..],
            &[-2.0, 7.0, 2.0][..],
        ])
        .unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(reconstruct(&lu, 3).approx_eq(&a, 1e-12));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..], &[7.0, 8.0, 10.0][..]])
                .unwrap();
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            &[3.0, 2.0, -1.0][..],
            &[2.0, -2.0, 4.0][..],
            &[-1.0, 0.5, -1.0][..],
        ])
        .unwrap();
        let x = a.solve(&[1.0, -2.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - (-2.0)).abs() < 1e-12);
        assert!((x[2] - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::Singular { .. })));
        let lu = LuDecomposition::new_allow_singular(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert!(lu.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
        assert!((lu.determinant() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_of_permutation_like_matrix() {
        let a =
            Matrix::from_rows(&[&[0.0, 2.0, 0.0][..], &[0.0, 0.0, 3.0][..], &[4.0, 0.0, 0.0][..]])
                .unwrap();
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn non_finite_input_rejected() {
        let a = Matrix::from_rows(&[&[f64::NAN, 1.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::InvalidInput(_))));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(lu.solve(&[1.0]), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_matrix_right_hand_side() {
        let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 4.0][..]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0][..], &[8.0, 12.0][..]]).unwrap();
        let x = a.lu().unwrap().solve_matrix(&b).unwrap();
        assert!(
            x.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 3.0][..]]).unwrap(), 1e-12)
        );
    }
}
