//! Blocked LU factorisation with partial pivoting for real matrices.

use crate::error::LinalgError;
use crate::matrix::{par_band_rows, Matrix};
use crate::parallel::ThreadPool;
use crate::workspace::Workspace;
use crate::Result;

/// An LU factorisation `P·A = L·U` of a square real matrix with partial (row) pivoting.
///
/// The factors are stored compactly: the strictly lower triangle of `lu` holds the
/// multipliers of `L` (whose diagonal is implicitly 1) and the upper triangle holds `U`.
///
/// The factorisation is *blocked*: columns are eliminated in panels and the trailing
/// submatrix is updated with a tiled multiply-accumulate, so the working set stays
/// cache-resident.  The arithmetic (and hence the result, bit for bit) is identical to
/// the textbook unblocked right-looking elimination — only the memory access order
/// changes.  Solves come in allocating (`solve`, `solve_matrix`, `inverse`) and
/// allocation-free (`solve_into`, `solve_matrix_into`, `solve_right_matrix_into`)
/// flavours; the `_into` family is what the hot loops of `urs-core` use together with
/// a [`Workspace`].
///
/// # Example
///
/// ```
/// use urs_linalg::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0][..], &[6.0, 3.0][..]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// permutation: row `i` of the factorised matrix corresponds to row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// sign of the permutation (+1.0 or -1.0); used for the determinant.
    perm_sign: f64,
    /// `true` if a pivot underflowed to (effectively) zero.
    singular_at: Option<usize>,
}

/// Relative threshold below which a pivot is considered zero.
const PIVOT_EPS: f64 = 1e-300;

/// Panel width of the blocked elimination.
const PANEL: usize = 48;

impl LuDecomposition {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::InvalidInput`] if the matrix contains non-finite values, and
    /// [`LinalgError::Singular`] when the matrix is singular to working precision.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::from_matrix(a.clone())
    }

    /// Factorises a square matrix taking ownership of its storage (no copy).
    ///
    /// This is the move-in variant used by hot loops that refactorise a
    /// workspace-owned matrix every iteration; recover the buffer afterwards with
    /// [`into_matrix`](Self::into_matrix).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_matrix(a: Matrix) -> Result<Self> {
        Self::from_matrix_with(a, &ThreadPool::serial())
    }

    /// [`from_matrix`](Self::from_matrix) with the trailing-submatrix updates of the
    /// blocked elimination fanned out across the workers of `pool`.
    ///
    /// Panel factorisation (pivot search, swaps, multipliers) stays serial — it is a
    /// sequential dependency chain — but phase 2b, the multiply-accumulate of the rows
    /// *below* the panel, is row-independent and is partitioned into bands.  Every
    /// row's update runs the identical ascending-`k` loop it runs serially, so the
    /// factors are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`from_matrix`](Self::from_matrix), plus
    /// [`LinalgError::WorkerPanic`] if a worker panicked.
    pub fn from_matrix_with(a: Matrix, pool: &ThreadPool) -> Result<Self> {
        let lu = Self::factor_allow_singular(a, pool)?;
        if let Some(pivot) = lu.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        Ok(lu)
    }

    /// Factorises a square matrix, tolerating exactly singular input.
    ///
    /// The resulting decomposition can still be used for [`determinant`](Self::determinant)
    /// (which will be 0), but [`solve`](Self::solve) and [`inverse`](Self::inverse) will
    /// return [`LinalgError::Singular`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::InvalidInput`].
    pub fn new_allow_singular(a: &Matrix) -> Result<Self> {
        Self::factor_allow_singular(a.clone(), &ThreadPool::serial())
    }

    /// [`new_allow_singular`](Self::new_allow_singular) with the trailing updates
    /// parallelised on `pool`; see [`from_matrix_with`](Self::from_matrix_with) for
    /// the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::InvalidInput`], or
    /// [`LinalgError::WorkerPanic`].
    pub fn new_allow_singular_with(a: &Matrix, pool: &ThreadPool) -> Result<Self> {
        Self::factor_allow_singular(a.clone(), pool)
    }

    fn factor_allow_singular(a: Matrix, pool: &ThreadPool) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
        }
        let n = a.rows();
        let mut lu = a;
        let d = lu.as_mut_slice();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular_at = None;
        // Tracks which panel columns produced usable pivots; columns whose pivot
        // underflowed contribute nothing to the trailing update (matching the
        // unblocked algorithm, which skips their elimination step entirely).
        let mut active = [false; PANEL];

        // urs-analyze: begin(no_alloc)
        for kk in (0..n).step_by(PANEL) {
            let k_end = (kk + PANEL).min(n);
            // 1. Factor the panel columns kk..k_end (unblocked, full-height pivoting).
            for k in kk..k_end {
                let mut pivot_row = k;
                let mut pivot_val = d[k * n + k].abs();
                for i in (k + 1)..n {
                    let v = d[i * n + k].abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
                if pivot_row != k {
                    for j in 0..n {
                        d.swap(k * n + j, pivot_row * n + j);
                    }
                    perm.swap(k, pivot_row);
                    perm_sign = -perm_sign;
                }
                let pivot = d[k * n + k];
                if pivot.abs() < PIVOT_EPS {
                    if singular_at.is_none() {
                        singular_at = Some(k);
                    }
                    active[k - kk] = false;
                    continue;
                }
                active[k - kk] = true;
                // Multipliers plus the within-panel update of columns k+1..k_end.
                let (pivot_rows, trail) = d.split_at_mut((k + 1) * n);
                let u_row = &pivot_rows[k * n + (k + 1)..k * n + k_end];
                for row in trail.chunks_exact_mut(n) {
                    let factor = row[k] / pivot;
                    row[k] = factor;
                    if factor != 0.0 {
                        for (x, &u) in row[k + 1..k_end].iter_mut().zip(u_row) {
                            *x -= factor * u;
                        }
                    }
                }
            }
            // 2. Deferred update of the trailing columns k_end..n.
            if k_end == n {
                continue;
            }
            // 2a. Rows inside the panel: sequential elimination (each row k' uses the
            //     already-updated rows above it).
            for k in kk..k_end {
                if !active[k - kk] {
                    continue;
                }
                let (upper, lower) = d.split_at_mut((k + 1) * n);
                let u_row = &upper[k * n + k_end..(k + 1) * n];
                for row in lower.chunks_exact_mut(n).take(k_end - k - 1) {
                    let factor = row[k];
                    if factor != 0.0 {
                        for (x, &u) in row[k_end..].iter_mut().zip(u_row) {
                            *x -= factor * u;
                        }
                    }
                }
            }
            // 2b. Rows below the panel: a multiply-accumulate A22 ← A22 − L21·U12 with
            //     the panel's U rows (≤ PANEL·n doubles) staying cache-hot.  Each row's
            //     update is independent of every other row, so the rows can be split
            //     into bands across the pool; within a row the ascending-k loop is the
            //     same either way, keeping the factors bit-identical.
            let (panel_rows, trailing_rows) = d.split_at_mut(k_end * n);
            let trailing_count = trailing_rows.len() / n;
            let band_rows = par_band_rows(trailing_count, k_end - kk, n - k_end, pool.threads());
            if band_rows >= trailing_count {
                lu_trailing_update(trailing_rows, panel_rows, &active, kk, k_end, n);
            } else {
                let panel_ref: &[f64] = panel_rows;
                pool.par_chunks_mut(trailing_rows, band_rows * n, |_, band| {
                    lu_trailing_update(band, panel_ref, &active, kk, k_end, n);
                })?;
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(LuDecomposition { lu, perm, perm_sign, singular_at })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Returns `true` if the matrix was found to be singular.
    pub fn is_singular(&self) -> bool {
        self.singular_at.is_some()
    }

    /// Consumes the decomposition, returning the matrix that stores the packed
    /// factors — useful for recycling the buffer through a [`Workspace`].
    pub fn into_matrix(self) -> Matrix {
        self.lu
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        if self.singular_at.is_some() {
            return 0.0;
        }
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    fn ensure_regular(&self) -> Result<()> {
        if let Some(pivot) = self.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length, or
    /// [`LinalgError::Singular`] if the matrix was singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus a length check on `x`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU solve",
                left: (n, n),
                right: (b.len().max(x.len()), 1),
            });
        }
        let d = self.lu.as_slice();
        // Apply the permutation, then forward- and back-substitute.
        // urs-analyze: begin(no_alloc)
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let row = &d[i * n..i * n + i];
            let mut sum = x[i];
            for (l, &xj) in row.iter().zip(x.iter()) {
                sum -= l * xj;
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let row = &d[i * n..(i + 1) * n];
            let mut sum = x[i];
            for (u, &xj) in row[i + 1..].iter().zip(x[i + 1..].iter()) {
                sum -= u * xj;
            }
            x[i] = sum / row[i];
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus a dimension check on `B`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.dim(), b.cols());
        self.solve_matrix_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A X = B` into a caller-provided matrix (no allocation).
    ///
    /// All right-hand-side columns are eliminated simultaneously by whole-row
    /// operations, so the row-major layout is traversed contiguously — this is the
    /// multi-RHS kernel behind the logarithmic-reduction solver.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus dimension checks on `B` and `out`.
    pub fn solve_matrix_into(&self, b: &Matrix, out: &mut Matrix) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.rows() != n || out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU matrix solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let w = b.cols();
        // Gather the permuted rows of B, then block-substitute row-wise.
        for (i, &p) in self.perm.iter().enumerate() {
            out.as_mut_slice()[i * w..(i + 1) * w]
                .copy_from_slice(&b.as_slice()[p * w..(p + 1) * w]);
        }
        let d = self.lu.as_slice();
        let x = out.as_mut_slice();
        for i in 1..n {
            let (prev, rest) = x.split_at_mut(i * w);
            let xi = &mut rest[..w];
            // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
            substitute_row(xi, prev, &d[i * n..i * n + i], w);
        }
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut((i + 1) * w);
            let xi = &mut head[i * w..];
            let row = &d[i * n..(i + 1) * n];
            // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
            substitute_row(xi, tail, &row[i + 1..], w);
            let inv = row[i];
            for t in xi.iter_mut() {
                *t /= inv;
            }
        }
        Ok(())
    }

    /// Solves `X A = B` (right division) into a caller-provided matrix.
    ///
    /// Each row of `X` solves `Aᵀ xᵀ = bᵀ`, performed with the *existing* factors
    /// through `Aᵀ = Uᵀ Lᵀ P` — no transpose and no second factorisation.  `ws`
    /// lends the one scratch row the final column permutation needs.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus dimension checks on `B` and `out`.
    pub fn solve_right_matrix_into(
        &self,
        b: &Matrix,
        out: &mut Matrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.solve_right_matrix_into_with(b, out, ws, &ThreadPool::serial())
    }

    /// [`solve_right_matrix_into`](Self::solve_right_matrix_into) with the rows of
    /// `X` partitioned across the workers of `pool`.
    ///
    /// Each row of `X` is an independent triangular solve, so row bands can run
    /// concurrently; every row performs the identical column-ordered substitution it
    /// performs serially, keeping the result bit-identical at any thread count.  The
    /// serial path borrows its scratch row from `ws`; parallel workers each allocate
    /// one scratch row of their own, so a [`Workspace`] never crosses a thread.
    ///
    /// # Errors
    ///
    /// Same as [`solve_right_matrix_into`](Self::solve_right_matrix_into), plus
    /// [`LinalgError::WorkerPanic`] if a worker panicked.
    pub fn solve_right_matrix_into_with(
        &self,
        b: &Matrix,
        out: &mut Matrix,
        ws: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.cols() != n || out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU right matrix solve",
                left: b.shape(),
                right: (n, n),
            });
        }
        out.copy_from(b)?;
        self.right_solve_rows_with(out, ws, pool)
    }

    /// Solves `X A = B` for a **diagonal** `B` given by its packed diagonal,
    /// without materialising the dense right-hand side.
    ///
    /// `out` is seeded with `diag` scattered onto the diagonal and then runs
    /// exactly the row substitutions of
    /// [`solve_right_matrix_into_with`](Self::solve_right_matrix_into_with), so
    /// the result is bit-identical to the dense call on `B = diag(diag)`.
    ///
    /// # Errors
    ///
    /// Same as [`solve_right_matrix_into_with`](Self::solve_right_matrix_into_with).
    pub fn solve_right_diagonal_into_with(
        &self,
        diag: &[f64],
        out: &mut Matrix,
        ws: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if diag.len() != n || out.shape() != (n, n) {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU right diagonal solve",
                left: (diag.len(), diag.len()),
                right: (n, n),
            });
        }
        out.as_mut_slice().fill(0.0);
        for (i, &v) in diag.iter().enumerate() {
            // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
            out[(i, i)] = v;
        }
        self.right_solve_rows_with(out, ws, pool)
    }

    /// Right-divides every row of `out` in place: the shared tail of the
    /// `solve_right_*` entry points, which differ only in how they seed `out`.
    fn right_solve_rows_with(
        &self,
        out: &mut Matrix,
        ws: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<()> {
        let n = self.dim();
        let d = self.lu.as_slice();
        let rows = out.rows();
        let band_rows = par_band_rows(rows, n, n, pool.threads());
        if band_rows >= rows {
            let mut scratch = ws.real_buffer(n);
            right_solve_band(out.as_mut_slice(), d, &self.perm, &mut scratch, n);
            ws.release_real_buffer(scratch);
            return Ok(());
        }
        let perm = &self.perm;
        pool.par_chunks_mut_with(
            out.as_mut_slice(),
            band_rows * n,
            || vec![0.0; n],
            |scratch, _, band| {
                right_solve_band(band, d, perm, scratch, n);
            },
        )?;
        Ok(())
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Phase 2b of the blocked elimination: `A22 ← A22 − L21·U12` over a band of rows
/// below the panel.  Serial and parallel paths both call this on contiguous row
/// bands, so each row's arithmetic order never depends on the thread count.
// urs-analyze: begin(no_alloc)
fn lu_trailing_update(
    rows: &mut [f64],
    panel_rows: &[f64],
    active: &[bool; PANEL],
    kk: usize,
    k_end: usize,
    n: usize,
) {
    for row in rows.chunks_exact_mut(n) {
        for k in kk..k_end {
            if !active[k - kk] {
                continue;
            }
            let factor = row[k];
            if factor == 0.0 {
                continue;
            }
            let u_row = &panel_rows[k * n + k_end..(k + 1) * n];
            for (x, &u) in row[k_end..].iter_mut().zip(u_row) {
                *x -= factor * u;
            }
        }
    }
}

/// Right-divides a band of rows: quads of rows go through the lockstep
/// [`right_solve_rows4`] kernel, the remainder through the scalar
/// [`right_solve_row`].  Rows of `X A = B` never exchange data, and both kernels
/// perform the identical column-ordered substitution per row, so the grouping —
/// like the worker partitioning above — changes wall time, never bits.
fn right_solve_band(band: &mut [f64], d: &[f64], perm: &[usize], scratch: &mut [f64], n: usize) {
    let mut quads = band.chunks_exact_mut(4 * n);
    for quad in &mut quads {
        let (r0, rest) = quad.split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        right_solve_rows4(r0, r1, r2, r3, d, perm, scratch, n);
    }
    for row in quads.into_remainder().chunks_exact_mut(n) {
        right_solve_row(row, d, perm, scratch, n);
    }
}

/// Four independent rows of the right division solved in lockstep: each column
/// step loads row `j` of `U` (then `L`) once and advances four independent
/// substitution chains with it.  Every row still performs exactly the multiplies
/// and subtractions of [`right_solve_row`] in the same ascending-position order —
/// rows never read each other — so the result is bit-identical while the factor
/// traffic drops to a quarter and the chains hide each other's latency.
#[allow(clippy::too_many_arguments)]
fn right_solve_rows4(
    r0: &mut [f64],
    r1: &mut [f64],
    r2: &mut [f64],
    r3: &mut [f64],
    d: &[f64],
    perm: &[usize],
    scratch: &mut [f64],
    n: usize,
) {
    // w U = b: forward over columns using row j of U.
    for j in 0..n {
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let inv = d[j * n + j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w0 = r0[j] / inv;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        r0[j] = w0;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w1 = r1[j] / inv;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        r1[j] = w1;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w2 = r2[j] / inv;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        r2[j] = w2;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w3 = r3[j] / inv;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        r3[j] = w3;
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let u_row = &d[j * n + j + 1..(j + 1) * n];
        // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring right_solve_row")
        if w0 != 0.0 && w1 != 0.0 && w2 != 0.0 && w3 != 0.0 {
            for ((((&u, x0), x1), x2), x3) in u_row
                .iter()
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r0[j + 1..])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r1[j + 1..])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r2[j + 1..])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r3[j + 1..])
            {
                *x0 -= w0 * u;
                *x1 -= w1 * u;
                *x2 -= w2 * u;
                *x3 -= w3 * u;
            }
        } else {
            for (w, row) in [(w0, &mut *r0), (w1, &mut *r1), (w2, &mut *r2), (w3, &mut *r3)] {
                // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring right_solve_row")
                if w != 0.0 {
                    // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                    for (x, &u) in row[j + 1..].iter_mut().zip(u_row) {
                        *x -= w * u;
                    }
                }
            }
        }
    }
    // w L = w' (unit diagonal): backward over columns using row j of L.
    for j in (0..n).rev() {
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w0 = r0[j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w1 = r1[j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w2 = r2[j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let w3 = r3[j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let l_row = &d[j * n..j * n + j];
        // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring right_solve_row")
        if w0 != 0.0 && w1 != 0.0 && w2 != 0.0 && w3 != 0.0 {
            for ((((&l, x0), x1), x2), x3) in l_row
                .iter()
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r0[..j])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r1[..j])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r2[..j])
                // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                .zip(&mut r3[..j])
            {
                *x0 -= w0 * l;
                *x1 -= w1 * l;
                *x2 -= w2 * l;
                *x3 -= w3 * l;
            }
        } else {
            for (w, row) in [(w0, &mut *r0), (w1, &mut *r1), (w2, &mut *r2), (w3, &mut *r3)] {
                // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring right_solve_row")
                if w != 0.0 {
                    // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
                    for (x, &l) in row[..j].iter_mut().zip(l_row) {
                        *x -= w * l;
                    }
                }
            }
        }
    }
    // X = W P: scatter within each row.
    for row in [r0, r1, r2, r3] {
        scratch.copy_from_slice(row);
        for (k, &p) in perm.iter().enumerate() {
            // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
            row[p] = scratch[k];
        }
    }
}

/// One row of the right division `X A = B`: solve `w U = b` forward, `w L = w'`
/// backward, then scatter through the column permutation using `scratch` (length
/// `n`).  Factored out so the serial loop and the per-worker parallel bands run the
/// byte-for-byte identical routine.
fn right_solve_row(row: &mut [f64], d: &[f64], perm: &[usize], scratch: &mut [f64], n: usize) {
    // w U = b: forward over columns using row j of U.
    for j in 0..n {
        let wj = row[j] / d[j * n + j];
        row[j] = wj;
        if wj != 0.0 {
            for (x, &u) in row[j + 1..].iter_mut().zip(&d[j * n + j + 1..(j + 1) * n]) {
                *x -= wj * u;
            }
        }
    }
    // w L = w' (unit diagonal): backward over columns using row j of L.
    for j in (0..n).rev() {
        let wj = row[j];
        if wj != 0.0 {
            for (x, &l) in row[..j].iter_mut().zip(&d[j * n..j * n + j]) {
                *x -= wj * l;
            }
        }
    }
    // X = W P: scatter within the row.
    scratch.copy_from_slice(row);
    for (k, &p) in perm.iter().enumerate() {
        row[p] = scratch[k];
    }
}

/// One block-substitution row of the multi-RHS solves: `xi ← xi − Σ_j coeffs[j]·rows[j]`
/// with `rows[j]` the `w`-wide RHS row at offset `j·w`, `j` ascending.  Zero
/// coefficients are skipped exactly as the reference loop does; when four
/// consecutive coefficients are all nonzero the four updates run in one pass over
/// `xi` — the same multiplies and subtractions in the same per-element order (no
/// fusion, no reassociation), so the result is bit-identical while the `xi`
/// load/store traffic drops to a quarter.
fn substitute_row(xi: &mut [f64], rhs_rows: &[f64], coeffs: &[f64], w: usize) {
    let mut j = 0;
    while j + 4 <= coeffs.len() {
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let c0 = coeffs[j];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let c1 = coeffs[j + 1];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let c2 = coeffs[j + 2];
        // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
        let c3 = coeffs[j + 3];
        // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring the reference substitution loop")
        if c0 != 0.0 && c1 != 0.0 && c2 != 0.0 && c3 != 0.0 {
            // urs-analyze: allow(slice_index, reason = "RHS rows j..j+3, in range since (j+4)·w ≤ coeffs.len()·w ≤ rhs_rows.len()")
            let r0 = &rhs_rows[j * w..(j + 1) * w];
            // urs-analyze: allow(slice_index, reason = "RHS row j+1, in range as above")
            let r1 = &rhs_rows[(j + 1) * w..(j + 2) * w];
            // urs-analyze: allow(slice_index, reason = "RHS row j+2, in range as above")
            let r2 = &rhs_rows[(j + 2) * w..(j + 3) * w];
            // urs-analyze: allow(slice_index, reason = "RHS row j+3, in range as above")
            let r3 = &rhs_rows[(j + 3) * w..(j + 4) * w];
            for ((((t, &v0), &v1), &v2), &v3) in xi.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
                let mut acc = *t;
                acc -= c0 * v0;
                acc -= c1 * v1;
                acc -= c2 * v2;
                acc -= c3 * v3;
                *t = acc;
            }
        } else {
            // urs-analyze: allow(slice_index, reason = "offsets bounded by the factor dimension n; lockstep substitution hot loop")
            for (step, &c) in coeffs[j..j + 4].iter().enumerate() {
                // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring the reference substitution loop")
                if c != 0.0 {
                    let jj = j + step;
                    // urs-analyze: allow(slice_index, reason = "RHS row jj < coeffs.len(), so (jj+1)·w ≤ rhs_rows.len()")
                    let xj = &rhs_rows[jj * w..(jj + 1) * w];
                    for (t, &v) in xi.iter_mut().zip(xj) {
                        *t -= c * v;
                    }
                }
            }
        }
        j += 4;
    }
    for (tail, &c) in coeffs.iter().enumerate().skip(j) {
        // urs-analyze: allow(float_cmp, reason = "exact-zero skip gate, mirroring the reference substitution loop")
        if c != 0.0 {
            // urs-analyze: allow(slice_index, reason = "RHS row tail < coeffs.len(), so (tail+1)·w ≤ rhs_rows.len()")
            let xj = &rhs_rows[tail * w..(tail + 1) * w];
            for (t, &v) in xi.iter_mut().zip(xj) {
                *t -= c * v;
            }
        }
    }
}
// urs-analyze: end(no_alloc)

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(lu: &LuDecomposition, n: usize) -> Matrix {
        // Rebuild P^T * L * U to compare against A.
        let mut l = Matrix::identity(n);
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    l[(i, j)] = lu.lu[(i, j)];
                } else {
                    u[(i, j)] = lu.lu[(i, j)];
                }
            }
        }
        let plu = l.matmul(&u).unwrap();
        // Undo the permutation: row i of PLU equals row perm[i] of A.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(lu.perm[i], j)] = plu[(i, j)];
            }
        }
        a
    }

    #[test]
    fn factorisation_reconstructs_original() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 1.0][..],
            &[4.0, -6.0, 0.0][..],
            &[-2.0, 7.0, 2.0][..],
        ])
        .unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(reconstruct(&lu, 3).approx_eq(&a, 1e-12));
    }

    #[test]
    fn blocked_factorisation_crosses_panel_boundaries() {
        // n > PANEL exercises the deferred trailing update; reconstruction must hold.
        let n = PANEL + 13;
        let mut seed = 3_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += 4.0;
        }
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(reconstruct(&lu, n).approx_eq(&a, 1e-10));
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (orig, rec) in b.iter().zip(back) {
            assert!((orig - rec).abs() < 1e-9);
        }
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..], &[7.0, 8.0, 10.0][..]])
                .unwrap();
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            &[3.0, 2.0, -1.0][..],
            &[2.0, -2.0, 4.0][..],
            &[-1.0, 0.5, -1.0][..],
        ])
        .unwrap();
        let x = a.solve(&[1.0, -2.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - (-2.0)).abs() < 1e-12);
        assert!((x[2] - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::Singular { .. })));
        let lu = LuDecomposition::new_allow_singular(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert!(lu.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
        assert!((lu.determinant() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_of_permutation_like_matrix() {
        let a =
            Matrix::from_rows(&[&[0.0, 2.0, 0.0][..], &[0.0, 0.0, 3.0][..], &[4.0, 0.0, 0.0][..]])
                .unwrap();
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn non_finite_input_rejected() {
        let a = Matrix::from_rows(&[&[f64::NAN, 1.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::InvalidInput(_))));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(lu.solve(&[1.0]), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_matrix_right_hand_side() {
        let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 4.0][..]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0][..], &[8.0, 12.0][..]]).unwrap();
        let x = a.lu().unwrap().solve_matrix(&b).unwrap();
        assert!(
            x.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 3.0][..]]).unwrap(), 1e-12)
        );
    }

    #[test]
    fn right_solve_matches_transposed_left_solve() {
        let a =
            Matrix::from_rows(&[&[3.0, 1.0, 0.5][..], &[0.2, -2.0, 1.0][..], &[1.0, 0.0, 4.0][..]])
                .unwrap();
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[-1.0, 0.5, 0.0][..]]).unwrap();
        let lu = a.lu().unwrap();
        let mut ws = Workspace::new();
        let mut x = Matrix::zeros(2, 3);
        lu.solve_right_matrix_into(&b, &mut x, &mut ws).unwrap();
        // X A = B must hold.
        let back = x.matmul(&a).unwrap();
        assert!(back.approx_eq(&b, 1e-12), "XA = {back:?}");
    }

    #[test]
    fn from_matrix_and_into_matrix_round_trip_storage() {
        let a = Matrix::from_rows(&[&[4.0, 7.0][..], &[2.0, 6.0][..]]).unwrap();
        let lu = LuDecomposition::from_matrix(a.clone()).unwrap();
        let x = lu.solve(&[1.0, 0.0]).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!((back[0] - 1.0).abs() < 1e-12 && back[1].abs() < 1e-12);
        let storage = lu.into_matrix();
        assert_eq!(storage.shape(), (2, 2));
    }
}
