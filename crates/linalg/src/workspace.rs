//! Reusable scratch buffers for allocation-free hot loops.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::matrix::Matrix;

/// A pool of reusable scratch buffers backing the `_into` kernel family.
///
/// Iterative solvers — the logarithmic-reduction `R` computation, the block-tridiagonal
/// boundary elimination — need a handful of temporary matrices and vectors *per
/// iteration*.  Allocating them fresh each time dominates the runtime of small systems
/// and fragments the heap for large ones.  A `Workspace` hands out buffers and takes
/// them back, so a steady-state loop performs no heap allocation at all: acquire with
/// [`real_matrix`](Self::real_matrix)/[`complex_matrix`](Self::complex_matrix) (or the
/// raw-buffer variants), release with the matching `release_*` call, and the storage is
/// recycled for the next request of any shape with sufficient capacity.
///
/// The pool is deliberately *not* thread-safe: each worker of a parallel sweep owns its
/// own workspace, which keeps the hot path free of synchronisation.
///
/// # Example
///
/// ```
/// use urs_linalg::{Matrix, Workspace};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let mut ws = Workspace::new();
/// let mut product = ws.real_matrix(3, 3); // zeroed scratch matrix
/// product.gemm(2.0, &a, &a, 0.0)?;
/// assert_eq!(product[(1, 1)], 2.0);
/// ws.release_real_matrix(product); // storage is reused by the next request
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    real: Vec<Vec<f64>>,
    complex: Vec<Vec<Complex>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are pooled as they are released.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a zeroed real buffer of the given length, reusing pooled storage.
    pub fn real_buffer(&mut self, len: usize) -> Vec<f64> {
        match self.real.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a real buffer to the pool.
    pub fn release_real_buffer(&mut self, buf: Vec<f64>) {
        self.real.push(buf);
    }

    /// Hands out a zeroed complex buffer of the given length, reusing pooled storage.
    pub fn complex_buffer(&mut self, len: usize) -> Vec<Complex> {
        match self.complex.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, Complex::ZERO);
                buf
            }
            None => vec![Complex::ZERO; len],
        }
    }

    /// Returns a complex buffer to the pool.
    pub fn release_complex_buffer(&mut self, buf: Vec<Complex>) {
        self.complex.push(buf);
    }

    /// Hands out a zeroed `rows × cols` real matrix backed by pooled storage.
    pub fn real_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let buf = self.real_buffer(rows * cols);
        // urs-analyze: allow(no_panic, reason = "real_buffer returns exactly rows*cols elements on the line above")
        Matrix::from_vec(rows, cols, buf).expect("buffer length matches by construction")
    }

    /// Returns a real matrix's storage to the pool.
    pub fn release_real_matrix(&mut self, m: Matrix) {
        self.real.push(m.into_vec());
    }

    /// Hands out a zeroed `rows × cols` complex matrix backed by pooled storage.
    pub fn complex_matrix(&mut self, rows: usize, cols: usize) -> CMatrix {
        let buf = self.complex_buffer(rows * cols);
        // urs-analyze: allow(no_panic, reason = "complex_buffer returns exactly rows*cols elements on the line above")
        CMatrix::from_vec(rows, cols, buf).expect("buffer length matches by construction")
    }

    /// Returns a complex matrix's storage to the pool.
    pub fn release_complex_matrix(&mut self, m: CMatrix) {
        self.complex.push(m.into_vec());
    }

    /// Number of pooled (currently idle) buffers, real plus complex.
    pub fn pooled(&self) -> usize {
        self.real.len() + self.complex.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled() {
        let mut ws = Workspace::new();
        let m = ws.real_matrix(4, 4);
        assert_eq!(m.shape(), (4, 4));
        ws.release_real_matrix(m);
        assert_eq!(ws.pooled(), 1);
        // A differently-shaped request reuses the same storage.
        let v = ws.real_buffer(2);
        assert_eq!(ws.pooled(), 0);
        assert_eq!(v, vec![0.0, 0.0]);
        ws.release_real_buffer(v);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn released_buffers_come_back_zeroed() {
        let mut ws = Workspace::new();
        let mut m = ws.complex_matrix(2, 2);
        m[(0, 0)] = Complex::ONE;
        ws.release_complex_matrix(m);
        let again = ws.complex_matrix(2, 2);
        assert_eq!(again[(0, 0)], Complex::ZERO);
    }
}
