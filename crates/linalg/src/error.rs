//! Error type shared by every fallible operation in the crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// Every public fallible function in this crate returns a [`LinalgError`] rather than
/// panicking so that callers (the queueing solvers) can degrade gracefully — e.g. fall
/// back from the spectral expansion to the geometric approximation when a system
/// becomes ill-conditioned.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands have incompatible shapes (e.g. multiplying a 3×2 by a 4×4 matrix).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorisation or solve encountered an (effectively) singular matrix.
    Singular {
        /// Index of the pivot at which singularity was detected.
        pivot: usize,
    },
    /// An iterative algorithm did not converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input data is invalid (empty matrix, ragged rows, non-finite entries, …).
    InvalidInput(String),
    /// A worker thread panicked inside a parallel kernel.  The reported index is the
    /// smallest-indexed work item that panicked — the same item a serial run would
    /// have blown up on — so the error is independent of the thread count.
    WorkerPanic {
        /// Index of the smallest-indexed work item whose closure panicked.
        index: usize,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { operation, left, right } => write!(
                f,
                "dimension mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square but has shape {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            LinalgError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            LinalgError::WorkerPanic { index, message } => {
                write!(f, "worker panicked at parallel work item {index}: {message}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            operation: "matrix multiplication",
            left: (3, 2),
            right: (4, 4),
        };
        let text = err.to_string();
        assert!(text.contains("matrix multiplication"));
        assert!(text.contains("3x2"));
        assert!(text.contains("4x4"));
    }

    #[test]
    fn display_singular_and_not_square() {
        assert!(LinalgError::Singular { pivot: 2 }.to_string().contains("pivot 2"));
        assert!(LinalgError::NotSquare { rows: 2, cols: 3 }.to_string().contains("2x3"));
    }

    #[test]
    fn display_no_convergence_and_invalid() {
        let err = LinalgError::NoConvergence { algorithm: "francis-qr", iterations: 30 };
        assert!(err.to_string().contains("francis-qr"));
        let err = LinalgError::InvalidInput("empty matrix".into());
        assert!(err.to_string().contains("empty matrix"));
    }

    #[test]
    fn display_worker_panic() {
        let err = LinalgError::WorkerPanic { index: 4, message: "overflow".into() };
        let text = err.to_string();
        assert!(text.contains("work item 4"));
        assert!(text.contains("overflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
