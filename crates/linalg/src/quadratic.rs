//! Eigenvalues and eigenvectors of quadratic matrix polynomials.
//!
//! The spectral-expansion method for Markov-modulated queues needs the *generalized
//! eigenvalues* `z` and left eigenvectors `u` of the characteristic matrix polynomial
//!
//! ```text
//! Q(z) = Q0 + Q1 z + Q2 z²,        u Q(z) = 0,   det Q(z) = 0.
//! ```
//!
//! This module linearises the quadratic problem to an ordinary eigenvalue problem of a
//! real companion matrix of twice the size and feeds it to the Francis QR solver in
//! [`crate::eigen`].  Because the leading or trailing coefficient may be singular (in
//! queueing applications `Q2` has zero rows for environment states with no operative
//! server), the linearisation is performed on whichever end of the polynomial is
//! invertible:
//!
//! * `Q2` invertible → companion matrix of the monic polynomial in `z`,
//! * otherwise `Q0` invertible → companion matrix of the *reversed* polynomial in
//!   `ζ = 1/z`; eigenvalues `ζ = 0` correspond to infinite `z` and are discarded.

use crate::banded::BandedMatrix;
use crate::banded_profitable;
use crate::cbanded::{CBandedLu, CBandedMatrix};
use crate::clu::left_null_vector_of;
use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::eigen::{eigenvalues_with, EigenOptions};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Maximum number of shifted inverse-iteration refinements before falling back
/// to the dense null-space extraction.
const INVERSE_ITERATION_MAX: usize = 4;

/// Pivot modulus below which the banded factorisation of `Q(z)ᵀ` is treated as
/// exactly singular and the dense extraction takes over (matches the dense LU's
/// `PIVOT_EPS`).
const BANDED_PIVOT_EPS: f64 = 1e-300;

/// A single finite eigenvalue of a quadratic matrix polynomial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticEigenvalue {
    /// The eigenvalue `z` with `det Q(z) = 0`.
    pub z: Complex,
}

/// A quadratic matrix polynomial eigenvalue problem `Q(z) = Q0 + Q1 z + Q2 z²`.
///
/// # Example
///
/// ```
/// use urs_linalg::{Matrix, QuadraticEigenProblem};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Scalar case: 2 - 3z + z² = (z - 1)(z - 2).
/// let q0 = Matrix::from_rows(&[&[2.0][..]])?;
/// let q1 = Matrix::from_rows(&[&[-3.0][..]])?;
/// let q2 = Matrix::from_rows(&[&[1.0][..]])?;
/// let problem = QuadraticEigenProblem::new(q0, q1, q2)?;
/// let mut roots: Vec<f64> = problem.finite_eigenvalues()?.iter().map(|e| e.z.re).collect();
/// roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((roots[0] - 1.0).abs() < 1e-10 && (roots[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticEigenProblem {
    q0: Matrix,
    q1: Matrix,
    q2: Matrix,
    options: EigenOptions,
    /// Union lower/upper bandwidth of the three coefficients: `Q(z)` has the
    /// same nonzero pattern for every `z`, so the banded extraction path can be
    /// chosen once at construction time.
    kl: usize,
    ku: usize,
}

impl QuadraticEigenProblem {
    /// Creates a new problem from the three coefficient matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if any coefficient is not square or
    /// [`LinalgError::DimensionMismatch`] if their sizes differ.
    pub fn new(q0: Matrix, q1: Matrix, q2: Matrix) -> Result<Self> {
        for m in [&q0, &q1, &q2] {
            if !m.is_square() {
                return Err(LinalgError::NotSquare { rows: m.rows(), cols: m.cols() });
            }
        }
        if q0.shape() != q1.shape() || q1.shape() != q2.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "quadratic eigenvalue problem",
                left: q0.shape(),
                right: q2.shape(),
            });
        }
        let (mut kl, mut ku) = (0, 0);
        for m in [&q0, &q1, &q2] {
            let (l, u) = BandedMatrix::bandwidths_of(m);
            kl = kl.max(l);
            ku = ku.max(u);
        }
        Ok(QuadraticEigenProblem { q0, q1, q2, options: EigenOptions::default(), kl, ku })
    }

    /// Overrides the eigenvalue-iteration options.
    pub fn with_options(mut self, options: EigenOptions) -> Self {
        self.options = options;
        self
    }

    /// Order `s` of the coefficient matrices.
    pub fn order(&self) -> usize {
        self.q0.rows()
    }

    /// Evaluates `Q(z)` at a complex point.
    pub fn evaluate(&self, z: Complex) -> CMatrix {
        let s = self.order();
        let z2 = z * z;
        let mut out = CMatrix::zeros(s, s);
        for (((o, &c0), &c1), &c2) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.q0.as_slice())
            .zip(self.q1.as_slice())
            .zip(self.q2.as_slice())
        {
            *o = Complex::from_real(c0) + z * c1 + z2 * c2;
        }
        out
    }

    /// Evaluates `det Q(z)` at a complex point (useful for verifying eigenvalues).
    ///
    /// # Errors
    ///
    /// Propagates errors from the complex LU factorisation.
    pub fn determinant_at(&self, z: Complex) -> Result<Complex> {
        self.evaluate(z).determinant()
    }

    /// Computes every *finite* eigenvalue of the polynomial.
    ///
    /// The number of finite eigenvalues is `2s` minus the degree deficiency caused by a
    /// singular leading coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when both `Q0` and `Q2` are singular (the
    /// companion linearisation then does not exist in this simple form), or any error
    /// from the underlying QR iteration.
    pub fn finite_eigenvalues(&self) -> Result<Vec<QuadraticEigenvalue>> {
        let s = self.order();
        // Prefer the reversed linearisation on Q0 (always non-singular for the queueing
        // application, where Q0 = λI); fall back to the direct one on Q2.  The two
        // multi-right-hand-side solves land directly in the companion matrix's lower
        // blocks — no intermediate `A0`/`A1` allocations.
        let mut a0 = Matrix::zeros(s, s);
        let mut a1 = Matrix::zeros(s, s);
        if let Ok(q0_lu) = self.q0.lu() {
            q0_lu.solve_matrix_into(&self.q2, &mut a0)?; // Q0^{-1} Q2
            q0_lu.solve_matrix_into(&self.q1, &mut a1)?; // Q0^{-1} Q1
            let companion = build_companion(&a0, &a1);
            let zetas = eigenvalues_with(&companion, self.options)?;
            // ζ = 1/z; ζ = 0 corresponds to an infinite eigenvalue.
            let cutoff = zeta_zero_cutoff(&a0, &a1);
            Ok(zetas
                .into_iter()
                .filter(|zeta| zeta.abs() > cutoff)
                .map(|zeta| QuadraticEigenvalue { z: Complex::ONE / zeta })
                .collect())
        } else if let Ok(q2_lu) = self.q2.lu() {
            q2_lu.solve_matrix_into(&self.q0, &mut a0)?; // Q2^{-1} Q0
            q2_lu.solve_matrix_into(&self.q1, &mut a1)?; // Q2^{-1} Q1
            let companion = build_companion(&a0, &a1);
            let zs = eigenvalues_with(&companion, self.options)?;
            Ok(zs.into_iter().map(|z| QuadraticEigenvalue { z }).collect())
        } else {
            Err(LinalgError::Singular { pivot: s })
        }
    }

    /// Computes the eigenvalues strictly inside the unit disk, `|z| < 1 - tol`.
    ///
    /// For an ergodic Markov-modulated queue the spectral-expansion theory guarantees
    /// exactly `s` such eigenvalues.
    ///
    /// # Errors
    ///
    /// Same conditions as [`finite_eigenvalues`](Self::finite_eigenvalues).
    pub fn eigenvalues_inside_unit_disk(&self, tol: f64) -> Result<Vec<QuadraticEigenvalue>> {
        Ok(self.finite_eigenvalues()?.into_iter().filter(|e| e.z.abs() < 1.0 - tol).collect())
    }

    /// Union `(kl, ku)` bandwidth of the three coefficient matrices — the nonzero
    /// pattern of `Q(z)` for any `z`.
    pub fn bandwidths(&self) -> (usize, usize) {
        (self.kl, self.ku)
    }

    /// `true` when this problem's eigenvector extraction routes through the banded
    /// inverse-iteration path (see [`crate::banded_profitable`]).
    pub fn uses_banded_extraction(&self) -> bool {
        banded_profitable(self.order(), self.ku, self.kl)
    }

    /// Evaluates `Q(z)ᵀ` directly into packed banded storage.
    ///
    /// The transpose swaps the bandwidths: `Q(z)` has `(kl, ku)`, so `Q(z)ᵀ` has
    /// `(ku, kl)`.  Each stored element is computed with exactly the same
    /// expression as [`evaluate`](Self::evaluate) (`c0 + z·c1 + z²·c2`), so the
    /// banded operator agrees bitwise with the dense one on the shared pattern.
    fn evaluate_transposed_banded(&self, z: Complex) -> CBandedMatrix {
        let z2 = z * z;
        CBandedMatrix::from_fn(self.order(), self.ku, self.kl, |i, j| {
            // Element (i, j) of Q(z)ᵀ is element (j, i) of Q(z).
            // urs-analyze: allow(slice_index, reason = "from_fn supplies (i, j) within the validated matrix dimensions")
            Complex::from_real(self.q0[(j, i)]) + z * self.q1[(j, i)] + z2 * self.q2[(j, i)]
        })
    }

    /// Left null vector of `Q(z)` by shifted inverse iteration on the banded
    /// factorisation of `Q(z)ᵀ`.  Returns `None` whenever the banded path cannot
    /// certify the answer — the caller then falls back to the dense extraction.
    fn left_eigenvector_banded(&self, z: Complex) -> Option<Vec<Complex>> {
        let s = self.order();
        let m = self.evaluate_transposed_banded(z);
        let scale = m.max_abs();
        // urs-analyze: allow(float_cmp, reason = "exact-zero test: a zero operator has no usable null direction")
        if !scale.is_finite() || scale == 0.0 {
            return None;
        }
        let lu = CBandedLu::new_allow_singular(&m).ok()?;
        if lu.smallest_pivot() < BANDED_PIVOT_EPS {
            // Exactly singular within the band: the skipped elimination steps make
            // the factors unreliable, so let the dense extraction handle it.
            return None;
        }
        // At a converged eigenvalue `Q(z)ᵀ` is numerically singular: one U pivot is
        // O(ε·scale).  Flooring tiny pivots at ε·scale turns the back-substitution
        // into the classical regularised inverse-iteration step — one application
        // blows up the null direction by ~1/ε while leaving the rest O(1).
        let floor = scale * f64::EPSILON;
        let mut x = vec![Complex::ONE; s];
        let mut y = vec![Complex::ZERO; s];
        let mut r = vec![Complex::ZERO; s];
        let mut best_resid = f64::INFINITY;
        let mut best = Vec::new();
        for _ in 0..INVERSE_ITERATION_MAX {
            lu.solve_regularized_into(&x, &mut y, floor).ok()?;
            let max = y.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            // urs-analyze: allow(float_cmp, reason = "exact-zero test: an identically zero iterate cannot be normalised")
            if !max.is_finite() || max == 0.0 {
                return None;
            }
            for v in &mut y {
                *v = *v / max;
            }
            std::mem::swap(&mut x, &mut y);
            if m.matvec_into(&x, &mut r).is_err() {
                return None;
            }
            let resid = r.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
            if resid <= 1e-9 * scale {
                return Some(x);
            }
            if resid < best_resid {
                best_resid = resid;
                best.clone_from(&x);
            }
        }
        // Looser acceptance for hard cases: keep the best iterate if it is still a
        // convincing null direction, otherwise hand over to the dense extraction.
        if best_resid <= 1e-7 * scale {
            Some(best)
        } else {
            None
        }
    }

    /// Left null vector `u` of `Q(z)` at the given eigenvalue: `u Q(z) ≈ 0`.
    ///
    /// The vector is normalised to unit maximum modulus.
    ///
    /// When the coefficients are banded and [`crate::banded_profitable`] approves
    /// the shape, the vector is extracted by shifted inverse iteration on one
    /// banded LU of `Q(z)ᵀ` — `O(s·b²)` instead of the dense `O(s³)` null-space
    /// extraction — with a residual gate (`‖u Q(z)‖_∞ ≤ 10⁻⁹·‖Q(z)‖_max`) that
    /// falls back to the dense path whenever the fast path cannot certify its
    /// answer.  Both paths are deterministic, so repeated calls at the same `z`
    /// return bitwise-identical vectors.
    ///
    /// # Errors
    ///
    /// Propagates errors from the complex factorisation; in particular the call fails
    /// if `z` is not actually (close to) an eigenvalue.
    pub fn left_eigenvector(&self, z: Complex) -> Result<Vec<Complex>> {
        if self.uses_banded_extraction() {
            if let Some(u) = self.left_eigenvector_banded(z) {
                return Ok(u);
            }
        }
        left_null_vector_of(&self.evaluate(z))
    }

    /// Residual `‖u Q(z)‖_∞` for a candidate eigenpair; small values confirm accuracy.
    ///
    /// Routed through the banded evaluation of `Q(z)ᵀ` when the problem is
    /// banded-profitable, avoiding the dense `O(s²)` materialisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `u` has the wrong length.
    pub fn residual(&self, z: Complex, u: &[Complex]) -> Result<f64> {
        if self.uses_banded_extraction() {
            let m = self.evaluate_transposed_banded(z);
            let mut r = vec![Complex::ZERO; self.order()];
            m.matvec_into(u, &mut r)?;
            return Ok(r.iter().fold(0.0_f64, |m, c| m.max(c.abs())));
        }
        let uq = self.evaluate(z).vecmat(u)?;
        Ok(uq.iter().fold(0.0_f64, |m, c| m.max(c.abs())))
    }
}

/// Builds the block companion matrix `[[0, I], [-A0, -A1]]`.
fn build_companion(a0: &Matrix, a1: &Matrix) -> Matrix {
    let s = a0.rows();
    let mut c = Matrix::zeros(2 * s, 2 * s);
    for i in 0..s {
        // urs-analyze: allow(slice_index, reason = "companion embedding writes within the 2s x 2s matrix")
        c[(i, s + i)] = 1.0;
    }
    for i in 0..s {
        for j in 0..s {
            c[(s + i, j)] = -a0[(i, j)];
            c[(s + i, s + j)] = -a1[(i, j)];
        }
    }
    c
}

/// Threshold below which a companion eigenvalue ζ is treated as exactly zero
/// (i.e. the corresponding eigenvalue of the original polynomial is infinite).
fn zeta_zero_cutoff(a0: &Matrix, a1: &Matrix) -> f64 {
    let scale = a0.max_abs().max(a1.max_abs()).max(1.0);
    1e-9 / scale.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f64) -> Matrix {
        Matrix::from_rows(&[&[v][..]]).unwrap()
    }

    #[test]
    fn scalar_quadratic_roots() {
        // 6 - 5z + z² = (z - 2)(z - 3)
        let p = QuadraticEigenProblem::new(scalar(6.0), scalar(-5.0), scalar(1.0)).unwrap();
        let mut roots: Vec<f64> = p.finite_eigenvalues().unwrap().iter().map(|e| e.z.re).collect();
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((roots[0] - 2.0).abs() < 1e-9);
        assert!((roots[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_with_zero_leading_coefficient_has_one_finite_root() {
        // 2 - 4z + 0·z²: single finite root z = 0.5 (the other escapes to infinity).
        let p = QuadraticEigenProblem::new(scalar(2.0), scalar(-4.0), scalar(0.0)).unwrap();
        let eig = p.finite_eigenvalues().unwrap();
        assert_eq!(eig.len(), 1);
        assert!((eig[0].z - Complex::from_real(0.5)).abs() < 1e-9);
    }

    #[test]
    fn diagonal_system_decouples() {
        // Two decoupled scalar quadratics:
        //   (z-1)(z-4) = 4 - 5z + z²  and  (z-0.5)(z-2) = 1 - 2.5z + z²
        let q0 = Matrix::from_diagonal(&[4.0, 1.0]);
        let q1 = Matrix::from_diagonal(&[-5.0, -2.5]);
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let mut roots: Vec<f64> = p.finite_eigenvalues().unwrap().iter().map(|e| e.z.re).collect();
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = [0.5, 1.0, 2.0, 4.0];
        for (r, e) in roots.iter().zip(expected) {
            assert!((r - e).abs() < 1e-8, "roots {roots:?}");
        }
    }

    #[test]
    fn eigenvalues_verify_against_determinant() {
        let q0 = Matrix::from_rows(&[&[1.5, 0.2][..], &[0.1, 2.0][..]]).unwrap();
        let q1 = Matrix::from_rows(&[&[-3.0, 0.5][..], &[0.3, -4.0][..]]).unwrap();
        let q2 = Matrix::from_rows(&[&[1.0, 0.1][..], &[0.0, 1.0][..]]).unwrap();
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let eig = p.finite_eigenvalues().unwrap();
        assert_eq!(eig.len(), 4);
        for e in &eig {
            let det = p.determinant_at(e.z).unwrap();
            assert!(det.abs() < 1e-6, "det Q({}) = {det}", e.z);
        }
    }

    #[test]
    fn left_eigenvector_has_small_residual() {
        let q0 = Matrix::from_rows(&[&[2.0, 0.5][..], &[0.25, 1.0][..]]).unwrap();
        let q1 = Matrix::from_rows(&[&[-4.0, 0.0][..], &[0.5, -3.0][..]]).unwrap();
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        for e in p.finite_eigenvalues().unwrap() {
            let u = p.left_eigenvector(e.z).unwrap();
            assert!(p.residual(e.z, &u).unwrap() < 1e-7);
        }
    }

    #[test]
    fn unit_disk_filter() {
        // Roots straddling the unit circle: (z-0.5)(z-2) and (z-0.1)(z-10)
        let q0 = Matrix::from_diagonal(&[1.0, 1.0]);
        let q1 = Matrix::from_diagonal(&[-2.5, -10.1]);
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let inside = p.eigenvalues_inside_unit_disk(1e-9).unwrap();
        assert_eq!(inside.len(), 2);
        let mut vals: Vec<f64> = inside.iter().map(|e| e.z.re).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 0.1).abs() < 1e-8);
        assert!((vals[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let err = QuadraticEigenProblem::new(
            Matrix::identity(2),
            Matrix::identity(3),
            Matrix::identity(2),
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    /// A banded-profitable QBD-shaped problem: diagonal `Q0`/`Q2`, tridiagonal `Q1`.
    fn banded_test_problem() -> QuadraticEigenProblem {
        let s = 20;
        let mut q0 = Matrix::zeros(s, s);
        let mut q1 = Matrix::zeros(s, s);
        let mut q2 = Matrix::zeros(s, s);
        for i in 0..s {
            q0[(i, i)] = 1.5;
            q2[(i, i)] = 0.4 + 0.01 * i as f64;
            q1[(i, i)] = -(4.0 + 0.05 * i as f64);
            if i + 1 < s {
                q1[(i, i + 1)] = 0.7;
                q1[(i + 1, i)] = 0.9;
            }
        }
        QuadraticEigenProblem::new(q0, q1, q2).unwrap()
    }

    #[test]
    fn banded_extraction_matches_dense_null_space() {
        let p = banded_test_problem();
        assert_eq!(p.bandwidths(), (1, 1));
        assert!(p.uses_banded_extraction());
        let eig = p.finite_eigenvalues().unwrap();
        assert!(!eig.is_empty());
        for e in eig.iter().take(8) {
            let u = p.left_eigenvector(e.z).unwrap();
            // Normalised to unit maximum modulus, residual certified small.
            let max = u.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
            assert!((max - 1.0).abs() < 1e-12, "max modulus {max}");
            let dense = p.evaluate(e.z);
            let scale = dense.max_abs();
            assert!(p.residual(e.z, &u).unwrap() <= 1e-7 * scale);
            // Same null direction as the dense extraction, up to a complex scalar.
            let v = left_null_vector_of(&dense).unwrap();
            let k =
                (0..u.len()).max_by(|&a, &b| u[a].abs().partial_cmp(&u[b].abs()).unwrap()).unwrap();
            let ratio = v[k] / u[k];
            for (a, b) in u.iter().zip(&v) {
                assert!((*a * ratio - *b).abs() < 1e-7, "direction mismatch");
            }
        }
    }

    #[test]
    fn banded_extraction_is_deterministic() {
        let p = banded_test_problem();
        let z = p.finite_eigenvalues().unwrap()[0].z;
        let a = p.left_eigenvector(z).unwrap();
        let b = p.left_eigenvector(z).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn dense_fallback_used_for_small_or_full_problems() {
        // 2×2 problems stay on the dense path regardless of structure.
        let q0 = Matrix::from_rows(&[&[2.0, 0.5][..], &[0.25, 1.0][..]]).unwrap();
        let q1 = Matrix::from_rows(&[&[-4.0, 0.0][..], &[0.5, -3.0][..]]).unwrap();
        let p = QuadraticEigenProblem::new(q0, q1, Matrix::identity(2)).unwrap();
        assert!(!p.uses_banded_extraction());
        for e in p.finite_eigenvalues().unwrap() {
            let u = p.left_eigenvector(e.z).unwrap();
            assert!(p.residual(e.z, &u).unwrap() < 1e-7);
        }
    }

    #[test]
    fn both_ends_singular_rejected() {
        let z = Matrix::zeros(2, 2);
        let p = QuadraticEigenProblem::new(z.clone(), Matrix::identity(2), z).unwrap();
        assert!(matches!(p.finite_eigenvalues(), Err(LinalgError::Singular { .. })));
    }
}
