//! Eigenvalues and eigenvectors of quadratic matrix polynomials.
//!
//! The spectral-expansion method for Markov-modulated queues needs the *generalized
//! eigenvalues* `z` and left eigenvectors `u` of the characteristic matrix polynomial
//!
//! ```text
//! Q(z) = Q0 + Q1 z + Q2 z²,        u Q(z) = 0,   det Q(z) = 0.
//! ```
//!
//! This module linearises the quadratic problem to an ordinary eigenvalue problem of a
//! real companion matrix of twice the size and feeds it to the Francis QR solver in
//! [`crate::eigen`].  Because the leading or trailing coefficient may be singular (in
//! queueing applications `Q2` has zero rows for environment states with no operative
//! server), the linearisation is performed on whichever end of the polynomial is
//! invertible:
//!
//! * `Q2` invertible → companion matrix of the monic polynomial in `z`,
//! * otherwise `Q0` invertible → companion matrix of the *reversed* polynomial in
//!   `ζ = 1/z`; eigenvalues `ζ = 0` correspond to infinite `z` and are discarded.

use crate::clu::left_null_vector_of;
use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::eigen::{eigenvalues_with, EigenOptions};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// A single finite eigenvalue of a quadratic matrix polynomial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticEigenvalue {
    /// The eigenvalue `z` with `det Q(z) = 0`.
    pub z: Complex,
}

/// A quadratic matrix polynomial eigenvalue problem `Q(z) = Q0 + Q1 z + Q2 z²`.
///
/// # Example
///
/// ```
/// use urs_linalg::{Matrix, QuadraticEigenProblem};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Scalar case: 2 - 3z + z² = (z - 1)(z - 2).
/// let q0 = Matrix::from_rows(&[&[2.0][..]])?;
/// let q1 = Matrix::from_rows(&[&[-3.0][..]])?;
/// let q2 = Matrix::from_rows(&[&[1.0][..]])?;
/// let problem = QuadraticEigenProblem::new(q0, q1, q2)?;
/// let mut roots: Vec<f64> = problem.finite_eigenvalues()?.iter().map(|e| e.z.re).collect();
/// roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((roots[0] - 1.0).abs() < 1e-10 && (roots[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticEigenProblem {
    q0: Matrix,
    q1: Matrix,
    q2: Matrix,
    options: EigenOptions,
}

impl QuadraticEigenProblem {
    /// Creates a new problem from the three coefficient matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if any coefficient is not square or
    /// [`LinalgError::DimensionMismatch`] if their sizes differ.
    pub fn new(q0: Matrix, q1: Matrix, q2: Matrix) -> Result<Self> {
        for m in [&q0, &q1, &q2] {
            if !m.is_square() {
                return Err(LinalgError::NotSquare { rows: m.rows(), cols: m.cols() });
            }
        }
        if q0.shape() != q1.shape() || q1.shape() != q2.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "quadratic eigenvalue problem",
                left: q0.shape(),
                right: q2.shape(),
            });
        }
        Ok(QuadraticEigenProblem { q0, q1, q2, options: EigenOptions::default() })
    }

    /// Overrides the eigenvalue-iteration options.
    pub fn with_options(mut self, options: EigenOptions) -> Self {
        self.options = options;
        self
    }

    /// Order `s` of the coefficient matrices.
    pub fn order(&self) -> usize {
        self.q0.rows()
    }

    /// Evaluates `Q(z)` at a complex point.
    pub fn evaluate(&self, z: Complex) -> CMatrix {
        let s = self.order();
        let z2 = z * z;
        let mut out = CMatrix::zeros(s, s);
        for (((o, &c0), &c1), &c2) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.q0.as_slice())
            .zip(self.q1.as_slice())
            .zip(self.q2.as_slice())
        {
            *o = Complex::from_real(c0) + z * c1 + z2 * c2;
        }
        out
    }

    /// Evaluates `det Q(z)` at a complex point (useful for verifying eigenvalues).
    ///
    /// # Errors
    ///
    /// Propagates errors from the complex LU factorisation.
    pub fn determinant_at(&self, z: Complex) -> Result<Complex> {
        self.evaluate(z).determinant()
    }

    /// Computes every *finite* eigenvalue of the polynomial.
    ///
    /// The number of finite eigenvalues is `2s` minus the degree deficiency caused by a
    /// singular leading coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when both `Q0` and `Q2` are singular (the
    /// companion linearisation then does not exist in this simple form), or any error
    /// from the underlying QR iteration.
    pub fn finite_eigenvalues(&self) -> Result<Vec<QuadraticEigenvalue>> {
        let s = self.order();
        // Prefer the reversed linearisation on Q0 (always non-singular for the queueing
        // application, where Q0 = λI); fall back to the direct one on Q2.  The two
        // multi-right-hand-side solves land directly in the companion matrix's lower
        // blocks — no intermediate `A0`/`A1` allocations.
        let mut a0 = Matrix::zeros(s, s);
        let mut a1 = Matrix::zeros(s, s);
        if let Ok(q0_lu) = self.q0.lu() {
            q0_lu.solve_matrix_into(&self.q2, &mut a0)?; // Q0^{-1} Q2
            q0_lu.solve_matrix_into(&self.q1, &mut a1)?; // Q0^{-1} Q1
            let companion = build_companion(&a0, &a1);
            let zetas = eigenvalues_with(&companion, self.options)?;
            // ζ = 1/z; ζ = 0 corresponds to an infinite eigenvalue.
            let cutoff = zeta_zero_cutoff(&a0, &a1);
            Ok(zetas
                .into_iter()
                .filter(|zeta| zeta.abs() > cutoff)
                .map(|zeta| QuadraticEigenvalue { z: Complex::ONE / zeta })
                .collect())
        } else if let Ok(q2_lu) = self.q2.lu() {
            q2_lu.solve_matrix_into(&self.q0, &mut a0)?; // Q2^{-1} Q0
            q2_lu.solve_matrix_into(&self.q1, &mut a1)?; // Q2^{-1} Q1
            let companion = build_companion(&a0, &a1);
            let zs = eigenvalues_with(&companion, self.options)?;
            Ok(zs.into_iter().map(|z| QuadraticEigenvalue { z }).collect())
        } else {
            Err(LinalgError::Singular { pivot: s })
        }
    }

    /// Computes the eigenvalues strictly inside the unit disk, `|z| < 1 - tol`.
    ///
    /// For an ergodic Markov-modulated queue the spectral-expansion theory guarantees
    /// exactly `s` such eigenvalues.
    ///
    /// # Errors
    ///
    /// Same conditions as [`finite_eigenvalues`](Self::finite_eigenvalues).
    pub fn eigenvalues_inside_unit_disk(&self, tol: f64) -> Result<Vec<QuadraticEigenvalue>> {
        Ok(self.finite_eigenvalues()?.into_iter().filter(|e| e.z.abs() < 1.0 - tol).collect())
    }

    /// Left null vector `u` of `Q(z)` at the given eigenvalue: `u Q(z) ≈ 0`.
    ///
    /// The vector is normalised to unit maximum modulus.
    ///
    /// # Errors
    ///
    /// Propagates errors from the complex factorisation; in particular the call fails
    /// if `z` is not actually (close to) an eigenvalue.
    pub fn left_eigenvector(&self, z: Complex) -> Result<Vec<Complex>> {
        left_null_vector_of(&self.evaluate(z))
    }

    /// Residual `‖u Q(z)‖_∞` for a candidate eigenpair; small values confirm accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `u` has the wrong length.
    pub fn residual(&self, z: Complex, u: &[Complex]) -> Result<f64> {
        let uq = self.evaluate(z).vecmat(u)?;
        Ok(uq.iter().fold(0.0_f64, |m, c| m.max(c.abs())))
    }
}

/// Builds the block companion matrix `[[0, I], [-A0, -A1]]`.
fn build_companion(a0: &Matrix, a1: &Matrix) -> Matrix {
    let s = a0.rows();
    let mut c = Matrix::zeros(2 * s, 2 * s);
    for i in 0..s {
        c[(i, s + i)] = 1.0;
    }
    for i in 0..s {
        for j in 0..s {
            c[(s + i, j)] = -a0[(i, j)];
            c[(s + i, s + j)] = -a1[(i, j)];
        }
    }
    c
}

/// Threshold below which a companion eigenvalue ζ is treated as exactly zero
/// (i.e. the corresponding eigenvalue of the original polynomial is infinite).
fn zeta_zero_cutoff(a0: &Matrix, a1: &Matrix) -> f64 {
    let scale = a0.max_abs().max(a1.max_abs()).max(1.0);
    1e-9 / scale.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f64) -> Matrix {
        Matrix::from_rows(&[&[v][..]]).unwrap()
    }

    #[test]
    fn scalar_quadratic_roots() {
        // 6 - 5z + z² = (z - 2)(z - 3)
        let p = QuadraticEigenProblem::new(scalar(6.0), scalar(-5.0), scalar(1.0)).unwrap();
        let mut roots: Vec<f64> = p.finite_eigenvalues().unwrap().iter().map(|e| e.z.re).collect();
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((roots[0] - 2.0).abs() < 1e-9);
        assert!((roots[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_with_zero_leading_coefficient_has_one_finite_root() {
        // 2 - 4z + 0·z²: single finite root z = 0.5 (the other escapes to infinity).
        let p = QuadraticEigenProblem::new(scalar(2.0), scalar(-4.0), scalar(0.0)).unwrap();
        let eig = p.finite_eigenvalues().unwrap();
        assert_eq!(eig.len(), 1);
        assert!((eig[0].z - Complex::from_real(0.5)).abs() < 1e-9);
    }

    #[test]
    fn diagonal_system_decouples() {
        // Two decoupled scalar quadratics:
        //   (z-1)(z-4) = 4 - 5z + z²  and  (z-0.5)(z-2) = 1 - 2.5z + z²
        let q0 = Matrix::from_diagonal(&[4.0, 1.0]);
        let q1 = Matrix::from_diagonal(&[-5.0, -2.5]);
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let mut roots: Vec<f64> = p.finite_eigenvalues().unwrap().iter().map(|e| e.z.re).collect();
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = [0.5, 1.0, 2.0, 4.0];
        for (r, e) in roots.iter().zip(expected) {
            assert!((r - e).abs() < 1e-8, "roots {roots:?}");
        }
    }

    #[test]
    fn eigenvalues_verify_against_determinant() {
        let q0 = Matrix::from_rows(&[&[1.5, 0.2][..], &[0.1, 2.0][..]]).unwrap();
        let q1 = Matrix::from_rows(&[&[-3.0, 0.5][..], &[0.3, -4.0][..]]).unwrap();
        let q2 = Matrix::from_rows(&[&[1.0, 0.1][..], &[0.0, 1.0][..]]).unwrap();
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let eig = p.finite_eigenvalues().unwrap();
        assert_eq!(eig.len(), 4);
        for e in &eig {
            let det = p.determinant_at(e.z).unwrap();
            assert!(det.abs() < 1e-6, "det Q({}) = {det}", e.z);
        }
    }

    #[test]
    fn left_eigenvector_has_small_residual() {
        let q0 = Matrix::from_rows(&[&[2.0, 0.5][..], &[0.25, 1.0][..]]).unwrap();
        let q1 = Matrix::from_rows(&[&[-4.0, 0.0][..], &[0.5, -3.0][..]]).unwrap();
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        for e in p.finite_eigenvalues().unwrap() {
            let u = p.left_eigenvector(e.z).unwrap();
            assert!(p.residual(e.z, &u).unwrap() < 1e-7);
        }
    }

    #[test]
    fn unit_disk_filter() {
        // Roots straddling the unit circle: (z-0.5)(z-2) and (z-0.1)(z-10)
        let q0 = Matrix::from_diagonal(&[1.0, 1.0]);
        let q1 = Matrix::from_diagonal(&[-2.5, -10.1]);
        let q2 = Matrix::identity(2);
        let p = QuadraticEigenProblem::new(q0, q1, q2).unwrap();
        let inside = p.eigenvalues_inside_unit_disk(1e-9).unwrap();
        assert_eq!(inside.len(), 2);
        let mut vals: Vec<f64> = inside.iter().map(|e| e.z.re).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 0.1).abs() < 1e-8);
        assert!((vals[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let err = QuadraticEigenProblem::new(
            Matrix::identity(2),
            Matrix::identity(3),
            Matrix::identity(2),
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn both_ends_singular_rejected() {
        let z = Matrix::zeros(2, 2);
        let p = QuadraticEigenProblem::new(z.clone(), Matrix::identity(2), z).unwrap();
        assert!(matches!(p.finite_eigenvalues(), Err(LinalgError::Singular { .. })));
    }
}
