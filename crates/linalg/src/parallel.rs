//! A small scoped-thread worker pool for parallel kernels and grid evaluations.
//!
//! Every headline artefact of the paper — the cost curves of Figure 5, the sensitivity
//! sweeps of Figures 6–8, the provisioning curves of Figure 9 — re-solves the QBD model
//! at each point of a parameter grid, and the grid points are completely independent.
//! Since the kernels of this crate learned to fan their own row panels out (parallel
//! [`gemm`](crate::Matrix::gemm_with), blocked LU trailing updates, block-tridiagonal
//! right-solves), the pool also lives here, one crate below the solvers, so a single
//! large solve can use every core.  [`ThreadPool`] provides three guarantees:
//!
//! 1. **Deterministic ordering** — [`par_map`](ThreadPool::par_map) returns results in
//!    the order of the input slice regardless of the number of threads or how the
//!    scheduler interleaves them, so parallel sweeps are *bit-identical* to serial
//!    ones.  [`par_chunks_mut`](ThreadPool::par_chunks_mut) hands out disjoint
//!    partitions of one output buffer, so kernels that keep their per-element
//!    accumulation order are bit-identical at any worker count too.
//! 2. **Deterministic failure** — a panicking worker closure no longer poisons the
//!    scope with whichever payload the scheduler noticed first: the panic of the
//!    *smallest* work-item index is the one reported, either re-raised
//!    ([`par_map`](ThreadPool::par_map)) or converted to a [`WorkerPanic`] error
//!    ([`try_par_map`](ThreadPool::try_par_map),
//!    [`par_chunks_mut`](ThreadPool::par_chunks_mut)) — exactly the failure a serial
//!    loop over the same closure would have hit.
//! 3. **No long-lived threads** — workers are `std::thread::scope`d to the call, so
//!    the pool is just a thread-count policy and is trivially `Send`, `Sync` and
//!    cheap to clone.  No external dependencies are needed.
//!
//! The default thread count is taken from the `URS_THREADS` environment variable when
//! set (a value of `1` forces serial execution), otherwise from
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use urs_linalg::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map(&[1, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//!
//! // Fallible mapping: the error of the smallest failing index is returned,
//! // matching what a serial loop over the same closure would report.
//! let r: Result<Vec<i32>, String> =
//!     ThreadPool::serial().try_par_map(&[1, 2, 3], |&x| if x == 2 { Err("two".into()) } else { Ok(x) });
//! assert_eq!(r, Err("two".to_string()));
//! ```

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::LinalgError;

/// A worker closure panicked inside a [`ThreadPool`] primitive.
///
/// The pool evaluates every started work item to completion and reports the panic of
/// the *smallest* index — the same item at which a serial loop would have blown up —
/// so the failure is independent of the thread count and of scheduler interleaving.
/// The payload is rendered to text (`&str` and `String` payloads verbatim) because
/// panic payloads themselves are neither `Clone` nor comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the smallest-indexed work item whose closure panicked.
    pub index: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked at parallel work item {}: {}", self.index, self.message)
    }
}

impl Error for WorkerPanic {}

impl From<WorkerPanic> for LinalgError {
    fn from(p: WorkerPanic) -> Self {
        LinalgError::WorkerPanic { index: p.index, message: p.message }
    }
}

/// Lets doctest-style closures with `String` errors keep working under the
/// `E: From<WorkerPanic>` bound of [`ThreadPool::try_par_map`].
impl From<WorkerPanic> for String {
    fn from(p: WorkerPanic) -> Self {
        p.to_string()
    }
}

type PanicPayload = Box<dyn Any + Send>;

/// Renders a panic payload as text: `&str`/`String` payloads verbatim, anything else
/// as a placeholder (payloads are arbitrary `Any` values).
fn panic_message(payload: PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A scoped-thread worker pool with deterministic `par_map` and partition APIs.
///
/// The pool owns no threads between calls: each [`par_map`](Self::par_map) spawns up to
/// `threads` scoped workers that pull indices from a shared atomic counter, evaluate
/// the closure, and write results back keyed by index.  With one thread (or one item)
/// the closure is run inline, so `ThreadPool::serial()` is exactly the plain serial
/// loop.  [`par_chunks_mut`](Self::par_chunks_mut) is the same discipline for kernels:
/// workers pull disjoint chunks of one mutable buffer in ascending order, which is what
/// the parallel `gemm`/LU paths of this crate partition their output rows with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool using `threads` worker threads.  A value of `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// A single-threaded pool: every primitive degenerates to a plain serial loop.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Upper bound applied to `URS_THREADS`: requests beyond this are almost certainly
    /// typos, and scoped-spawning tens of thousands of OS threads per sweep would
    /// thrash rather than parallelise.
    pub const MAX_THREADS: usize = 512;

    /// A pool sized from the environment: the `URS_THREADS` variable when it parses to
    /// an integer — clamped to `1 ..= MAX_THREADS`, so `URS_THREADS=0` forces the
    /// serial path instead of being silently ignored — otherwise
    /// [`std::thread::available_parallelism`].
    pub fn auto() -> Self {
        ThreadPool { threads: threads_from_env(std::env::var("URS_THREADS").ok().as_deref()) }
    }

    /// The number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items`, in parallel, returning the results in
    /// input order.
    ///
    /// The closure must be freely callable from several threads at once (`Sync`); it
    /// receives each element exactly once.  Result ordering is independent of the
    /// thread count, so outputs are bit-identical to `items.iter().map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the smallest-indexed item whose closure panicked (every
    /// item started before the failure is evaluated to completion first, so the choice
    /// is deterministic).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let (slots, panicked) = self.run_catching(items, &f);
        if let Some((_, payload)) = panicked {
            resume_unwind(payload);
        }
        // urs-analyze: allow(no_panic, reason = "run_catching fills every slot unless a worker panicked, and the panic was re-raised above")
        slots.into_iter().map(|r| r.expect("every index is visited exactly once")).collect()
    }

    /// Fallible variant of [`par_map`](Self::par_map): evaluates every element and
    /// returns either all results in input order or the failure of the *smallest*
    /// failing index — an `Err` returned by `f`, or a worker panic converted to
    /// `E::from(WorkerPanic)`.
    ///
    /// Because failures are reported in index order, the returned error is the same
    /// one a serial loop over `f` would have stopped at — only the amount of wasted
    /// work behind a failure differs between thread counts.
    ///
    /// # Errors
    ///
    /// Returns the first (by input position) error produced by `f`, or a converted
    /// [`WorkerPanic`] if the first failure was a panic instead of an `Err`.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<WorkerPanic>,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let wrapped = |item: &T| f(item);
        let (slots, panicked) = self.run_catching(items, &wrapped);
        let panicked = panicked.map(|(i, payload)| (i, panic_message(payload)));
        let mut out = Vec::with_capacity(items.len());
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some((pi, message)) = &panicked {
                if *pi == i {
                    return Err(E::from(WorkerPanic { index: i, message: message.clone() }));
                }
            }
            match slot {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(e),
                // Items are handed out in ascending order and every started item runs
                // to completion, so an unevaluated slot can only sit *behind* the
                // recorded panic — the loop returns before reaching it.
                // urs-analyze: allow(no_panic, reason = "indices are handed out in ascending order, so empty slots only trail the recorded failure")
                None => unreachable!("unevaluated slot before the first failure"),
            }
        }
        Ok(out)
    }

    /// Splits `data` into chunks of `chunk_len` elements (the last may be shorter) and
    /// applies `f(chunk_index, chunk)` to each, in parallel over disjoint chunks.
    ///
    /// This is the indexed-partition primitive behind the parallel kernels: a row
    /// panel of an output matrix is one chunk, and because chunks never overlap, a
    /// kernel that keeps its per-element accumulation order produces bit-identical
    /// results at any worker count.  Chunks are handed out in ascending index order.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] for the smallest-indexed chunk whose closure panicked;
    /// the same contract as [`try_par_map`](Self::try_par_map), at every thread count
    /// including one.
    pub fn par_chunks_mut<T, F>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) -> Result<(), WorkerPanic>
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.par_chunks_mut_with(data, chunk_len, || (), |(), i, chunk| f(i, chunk))
    }

    /// Like [`par_chunks_mut`](Self::par_chunks_mut), but hands every worker its own
    /// state created by `init` — typically a scratch buffer or [`Workspace`] — so the
    /// allocation-free contract of the `_into` kernels survives parallel execution:
    /// each worker allocates its scratch once, not once per chunk.
    ///
    /// `init` runs once per worker (once total on the serial path) and must not
    /// panic; `f` panics are contained and reported like every other primitive.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] for the smallest-indexed chunk whose closure panicked.
    ///
    /// [`Workspace`]: crate::Workspace
    pub fn par_chunks_mut_with<T, S, I, F>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        init: I,
        f: F,
    ) -> Result<(), WorkerPanic>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return Ok(());
        }
        let chunk_len = chunk_len.max(1);
        let chunk_count = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(chunk_count);
        if workers <= 1 {
            let mut state = init();
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut state, i, chunk))) {
                    return Err(WorkerPanic { index: i, message: panic_message(payload) });
                }
            }
            return Ok(());
        }
        // Reversed so that popping from the Vec's tail hands chunks out in ascending
        // index order — the prefix property the smallest-index panic contract needs.
        let queue: Mutex<Vec<(usize, &mut [T])>> =
            Mutex::new(data.chunks_mut(chunk_len).enumerate().rev().collect());
        let abort = AtomicBool::new(false);
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let Some((i, chunk)) = lock_ignoring_poison(&queue).pop() else { break };
                        if let Err(payload) =
                            catch_unwind(AssertUnwindSafe(|| f(&mut state, i, chunk)))
                        {
                            abort.store(true, Ordering::Relaxed);
                            lock_ignoring_poison(&panics).push((i, panic_message(payload)));
                        }
                    }
                });
            }
        });
        let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(min) = panics.iter().map(|(i, _)| *i).min() {
            // urs-analyze: allow(no_panic, reason = "`min` was computed from the same non-empty `panics` vector one line above")
            let at = panics.iter().position(|(i, _)| *i == min).expect("min came from panics");
            let (index, message) = panics.swap_remove(at);
            return Err(WorkerPanic { index, message });
        }
        Ok(())
    }

    /// Shared engine of `par_map`/`try_par_map`: evaluates every item (under
    /// `catch_unwind`), returning per-index result slots plus the smallest-indexed
    /// panic, if any.  Indices are handed out in ascending order and every started
    /// item runs to completion, so the set of evaluated indices is always a prefix
    /// and the reported panic is deterministic.
    fn run_catching<T, R, F>(
        &self,
        items: &[T],
        f: &F,
    ) -> (Vec<Option<R>>, Option<(usize, PanicPayload)>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => slots.push(Some(r)),
                    Err(payload) => {
                        slots.resize_with(items.len(), || None);
                        return (slots, Some((i, payload)));
                    }
                }
            }
            return (slots, None);
        }
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        let panics: Mutex<Vec<(usize, PanicPayload)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                lock_ignoring_poison(&panics).push((i, payload));
                            }
                        }
                    }
                    lock_ignoring_poison(&collected).extend(local);
                });
            }
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[i] = Some(r);
        }
        let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
        panics.sort_by_key(|(i, _)| *i);
        let first = if panics.is_empty() { None } else { Some(panics.swap_remove(0)) };
        (slots, first)
    }
}

impl Default for ThreadPool {
    /// Equivalent to [`ThreadPool::auto`].
    fn default() -> Self {
        ThreadPool::auto()
    }
}

/// Hardware thread count, defaulting to 1 where it cannot be queried.
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves the raw `URS_THREADS` value (or its absence) to a worker count: parsed
/// integers are clamped to `1 ..= MAX_THREADS`; unparsable or missing values fall
/// back to hardware parallelism.  Pure, so it is testable without mutating the
/// process environment (which is not thread-safe to write concurrently).
fn threads_from_env(raw: Option<&str>) -> usize {
    match raw {
        Some(value) => match value.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, ThreadPool::MAX_THREADS),
            Err(_) => available_parallelism(),
        },
        None => available_parallelism(),
    }
}

/// Locks a mutex, recovering the guard even if another worker panicked while holding
/// it (worker panics are contained per item, so the guard data is always consistent).
fn lock_ignoring_poison<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::serial().threads(), 1);
        assert!(ThreadPool::default().threads() >= 1);
    }

    #[test]
    fn urs_threads_env_is_clamped_not_ignored() {
        // `threads_from_env` is the pure core of `auto()`, so the clamping rules are
        // testable without mutating the process environment (writes race with every
        // other test reading it through ThreadPool::default()).
        // A zero request is a floor-clamp to the serial path, not a silent fallback
        // to all cores.
        assert_eq!(threads_from_env(Some("0")), 1);
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 7 ")), 7);
        // Absurd widths are capped rather than spawning thousands of threads.
        assert_eq!(threads_from_env(Some("999999999")), ThreadPool::MAX_THREADS);
        assert_eq!(threads_from_env(Some(&usize::MAX.to_string())), ThreadPool::MAX_THREADS);
        // Garbage and absence both fall back to hardware parallelism.
        assert_eq!(threads_from_env(Some("not-a-number")), available_parallelism());
        assert_eq!(threads_from_env(Some("-2")), available_parallelism());
        assert_eq!(threads_from_env(None), available_parallelism());
        assert!(ThreadPool::auto().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            // Skew the per-item cost so late items often finish before early ones.
            let out = pool.par_map(&items, |&i| {
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
                i * 3 + 1
            });
            assert_eq!(out, items.iter().map(|&i| i * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_calls_each_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = ThreadPool::new(4).par_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_map_on_empty_and_singleton_slices() {
        let pool = ThreadPool::new(8);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_first_error_by_index() {
        let items: Vec<i32> = (0..64).collect();
        for threads in [1, 4] {
            let result: Result<Vec<i32>, String> =
                ThreadPool::new(threads).try_par_map(&items, |&x| {
                    if x % 10 == 3 {
                        Err(format!("bad {x}"))
                    } else {
                        Ok(x)
                    }
                });
            // 3 is the smallest failing index regardless of scheduling.
            assert_eq!(result, Err("bad 3".to_string()));
        }
    }

    #[test]
    fn try_par_map_succeeds_when_all_items_succeed() {
        let items: Vec<i32> = (1..=32).collect();
        let result: Result<Vec<i32>, String> =
            ThreadPool::new(3).try_par_map(&items, |&x| Ok(x * x));
        assert_eq!(result.unwrap(), items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        // Floating-point work: the exact same closure must produce the exact same bits
        // through the pool as through a serial loop.
        let grid: Vec<f64> = (1..50).map(|i| 0.3 + i as f64 * 0.017).collect();
        let work = |&x: &f64| (x.sin() * x.exp()).ln_1p() / x.sqrt();
        let serial: Vec<f64> = grid.iter().map(work).collect();
        let parallel = ThreadPool::new(5).par_map(&grid, work);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_map_panic_is_reraised_for_smallest_index() {
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 8] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                ThreadPool::new(threads).par_map(&items, |&i| {
                    if i == 13 || i == 140 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }))
            .expect_err("the panic must propagate");
            assert_eq!(panic_message(caught), "boom at 13");
        }
    }

    #[test]
    fn try_par_map_converts_worker_panics_to_errors() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let result: Result<Vec<usize>, String> =
                ThreadPool::new(threads).try_par_map(&items, |&i| {
                    if i == 17 || i == 90 {
                        panic!("kernel blew up on item {i}");
                    }
                    Ok(i)
                });
            let message = result.expect_err("the panic must become an error");
            assert!(message.contains("work item 17"), "got: {message}");
            assert!(message.contains("kernel blew up on item 17"), "got: {message}");
        }
    }

    #[test]
    fn try_par_map_prefers_the_smaller_index_between_error_and_panic() {
        // An Err at index 3 precedes a panic at index 50: a serial loop would have
        // stopped at the Err, so that is what every thread count must report.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 8] {
            let result: Result<Vec<usize>, String> =
                ThreadPool::new(threads).try_par_map(&items, |&i| {
                    if i == 50 {
                        panic!("late panic");
                    }
                    if i == 3 {
                        return Err("early error".to_string());
                    }
                    Ok(i)
                });
            assert_eq!(result, Err("early error".to_string()));
        }
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 103]; // non-multiple of the chunk length
            ThreadPool::new(threads)
                .par_chunks_mut(&mut data, 10, |i, chunk| {
                    for x in chunk.iter_mut() {
                        *x += i + 1;
                    }
                })
                .unwrap();
            let expected: Vec<usize> = (0..103).map(|j| j / 10 + 1).collect();
            assert_eq!(data, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_on_empty_data_is_a_no_op() {
        let mut data: Vec<f64> = Vec::new();
        ThreadPool::new(4).par_chunks_mut(&mut data, 8, |_, _| panic!("never called")).unwrap();
    }

    #[test]
    fn par_chunks_mut_reports_smallest_panicking_chunk() {
        for threads in [1, 2, 8] {
            let mut data = vec![0_u8; 64];
            let err = ThreadPool::new(threads)
                .par_chunks_mut(&mut data, 4, |i, _| {
                    if i == 5 || i == 11 {
                        panic!("chunk {i} failed");
                    }
                })
                .expect_err("panics must surface as errors");
            assert_eq!(err.index, 5, "threads = {threads}");
            assert_eq!(err.message, "chunk 5 failed");
            let linalg: LinalgError = err.into();
            assert!(matches!(linalg, LinalgError::WorkerPanic { index: 5, .. }));
        }
    }

    #[test]
    fn par_chunks_mut_with_hands_each_worker_its_own_state() {
        // The per-worker state must never be shared between chunks running on
        // different workers; counting distinct initialisations proves each worker
        // built its own.
        let inits = AtomicUsize::new(0);
        let mut data = vec![0_usize; 96];
        ThreadPool::new(4)
            .par_chunks_mut_with(
                &mut data,
                8,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0_usize; 8] // scratch the closure scribbles on
                },
                |scratch, i, chunk| {
                    for (s, x) in scratch.iter_mut().zip(chunk.iter_mut()) {
                        *s = i;
                        *x = *s + 1;
                    }
                },
            )
            .unwrap();
        let inits = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&inits), "one init per worker, got {inits}");
        let expected: Vec<usize> = (0..96).map(|j| j / 8 + 1).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn worker_panic_display_and_conversions() {
        let wp = WorkerPanic { index: 7, message: "x".into() };
        assert!(wp.to_string().contains("work item 7"));
        let as_string: String = wp.clone().into();
        assert!(as_string.contains("work item 7"));
        let as_linalg: LinalgError = wp.into();
        assert!(as_linalg.to_string().contains("work item 7"));
    }
}
