//! A complex block-tridiagonal linear-system solver.
//!
//! The boundary equations of a quasi-birth-death process couple the probability vectors
//! of neighbouring queue-length levels only, so the linear system that determines them
//! is block tridiagonal.  Solving it by block forward elimination (a block Thomas
//! algorithm) costs `O(K s³)` instead of the `O(K³ s³)` of a dense factorisation, which
//! is what makes the exact spectral-expansion solution practical for systems with many
//! servers.

use crate::clu::CluDecomposition;
use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::parallel::ThreadPool;
use crate::workspace::Workspace;
use crate::Result;

/// A square block-tridiagonal system with `K` block rows of size `s` each.
///
/// Block row `i` represents the equation
///
/// ```text
/// L_i · x_{i-1} + D_i · x_i + U_i · x_{i+1} = b_i
/// ```
///
/// where `L_0` and `U_{K-1}` are absent.  The right-hand sides and solutions are complex
/// column vectors of length `s`.
///
/// # Example
///
/// ```
/// use urs_linalg::{BlockTridiagonal, CMatrix, Complex};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Two decoupled 1x1 blocks: 2·x0 = 2, 3·x1 = 6.
/// let mut sys = BlockTridiagonal::new(2, 1)?;
/// sys.set_diagonal(0, CMatrix::from_fn(1, 1, |_, _| Complex::from_real(2.0)))?;
/// sys.set_diagonal(1, CMatrix::from_fn(1, 1, |_, _| Complex::from_real(3.0)))?;
/// sys.set_rhs(0, vec![Complex::from_real(2.0)])?;
/// sys.set_rhs(1, vec![Complex::from_real(6.0)])?;
/// let x = sys.solve()?;
/// assert!((x[0][0].re - 1.0).abs() < 1e-12 && (x[1][0].re - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockTridiagonal {
    block_rows: usize,
    block_size: usize,
    diagonal: Vec<CMatrix>,
    lower: Vec<Option<CMatrix>>,
    upper: Vec<Option<CMatrix>>,
    rhs: Vec<Vec<Complex>>,
}

impl BlockTridiagonal {
    /// Creates an empty system with `block_rows` block rows of size `block_size`.
    ///
    /// All blocks start as zero matrices and all right-hand sides as zero vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if either dimension is zero.
    pub fn new(block_rows: usize, block_size: usize) -> Result<Self> {
        if block_rows == 0 || block_size == 0 {
            return Err(LinalgError::InvalidInput(
                "block-tridiagonal system must have at least one non-empty block".into(),
            ));
        }
        Ok(BlockTridiagonal {
            block_rows,
            block_size,
            diagonal: vec![CMatrix::zeros(block_size, block_size); block_rows],
            lower: vec![None; block_rows],
            upper: vec![None; block_rows],
            rhs: vec![vec![Complex::ZERO; block_size]; block_rows],
        })
    }

    /// Number of block rows `K`.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Size `s` of each block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn check_block(&self, block: &CMatrix) -> Result<()> {
        if block.shape() != (self.block_size, self.block_size) {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal block assignment",
                left: (self.block_size, self.block_size),
                right: block.shape(),
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.block_rows {
            return Err(LinalgError::InvalidInput(format!(
                "block row {row} out of range (system has {} block rows)",
                self.block_rows
            )));
        }
        Ok(())
    }

    /// Sets the diagonal block `D_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or block shape is invalid.
    pub fn set_diagonal(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        self.check_block(&block)?;
        self.diagonal[row] = block;
        Ok(())
    }

    /// Sets the sub-diagonal block `L_row` (coupling to `x_{row-1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row == 0`, the row index is out of range, or the block has
    /// the wrong shape.
    pub fn set_lower(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        if row == 0 {
            return Err(LinalgError::InvalidInput("block row 0 has no sub-diagonal block".into()));
        }
        self.check_block(&block)?;
        self.lower[row] = Some(block);
        Ok(())
    }

    /// Sets the super-diagonal block `U_row` (coupling to `x_{row+1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is the last block row, out of range, or the block has
    /// the wrong shape.
    pub fn set_upper(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        if row + 1 == self.block_rows {
            return Err(LinalgError::InvalidInput(
                "the last block row has no super-diagonal block".into(),
            ));
        }
        self.check_block(&block)?;
        self.upper[row] = Some(block);
        Ok(())
    }

    /// Sets the right-hand side vector `b_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or vector length is invalid.
    pub fn set_rhs(&mut self, row: usize, rhs: Vec<Complex>) -> Result<()> {
        self.check_row(row)?;
        if rhs.len() != self.block_size {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal right-hand side",
                left: (self.block_size, 1),
                right: (rhs.len(), 1),
            });
        }
        self.rhs[row] = rhs;
        Ok(())
    }

    /// Solves the system by block forward elimination and back substitution.
    ///
    /// Returns the solution as one complex vector per block row.
    ///
    /// The elimination runs entirely on the in-place kernels: each block row costs
    /// *one* LU factorisation (the `W = L_i·D'⁻¹` product reuses the previous row's
    /// factors through [`CluDecomposition::solve_right_matrix_into`] instead of
    /// factorising the transpose a second time) and all temporaries come from one
    /// [`Workspace`], so the steady-state loop allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot block becomes singular during the
    /// elimination (callers may then fall back to a dense solve).
    pub fn solve(&self) -> Result<Vec<Vec<Complex>>> {
        self.solve_with(&ThreadPool::serial())
    }

    /// [`solve`](Self::solve) with the per-block kernels — the `W = L_i·D'⁻¹` right
    /// solve, the `D'_i = D_i − W·U_{i-1}` multiply-accumulate, and the diagonal-block
    /// factorisation — running on the workers of `pool`.
    ///
    /// The block recurrence itself is sequential (row `i` needs row `i-1`'s factors),
    /// so the parallelism lives *inside* each block operation; every kernel's banded
    /// partition preserves the serial accumulation order, making the solution
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus [`LinalgError::WorkerPanic`] if a worker
    /// panicked.
    pub fn solve_with(&self, pool: &ThreadPool) -> Result<Vec<Vec<Complex>>> {
        let k = self.block_rows;
        let s = self.block_size;
        let mut ws = Workspace::new();
        let mut rhs: Vec<Vec<Complex>> = self.rhs.clone();

        // Forward elimination: remove L_i using block row i-1.  Each iteration
        // factorises the (updated) diagonal block exactly once and keeps the factors
        // for the back substitution.
        let mut factorisations: Vec<CluDecomposition> = Vec::with_capacity(k);
        let mut w = ws.complex_matrix(s, s);
        let mut coupled = ws.complex_buffer(s);
        for i in 0..k {
            // Working copy of D_i in pooled storage (consumed by the factorisation).
            let mut d_cur = ws.complex_matrix(s, s);
            d_cur.as_mut_slice().copy_from_slice(self.diagonal[i].as_slice());
            if i > 0 {
                if let Some(lower) = &self.lower[i] {
                    // W · D'_{i-1} = L_i, then D'_i = D_i − W·U_{i-1} and
                    // b'_i = b_i − W·b'_{i-1}.
                    factorisations[i - 1]
                        .solve_right_matrix_into_with(lower, &mut w, &mut ws, pool)?;
                    if let Some(upper_prev) = &self.upper[i - 1] {
                        d_cur.gemm_with(
                            Complex::from_real(-1.0),
                            &w,
                            upper_prev,
                            Complex::ONE,
                            pool,
                        )?;
                    }
                    w.matvec_into(&rhs[i - 1], &mut coupled)?;
                    for (target, &delta) in rhs[i].iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            factorisations.push(CluDecomposition::from_matrix_with(d_cur, pool)?);
        }
        ws.release_complex_matrix(w);

        // Back substitution.
        let mut x: Vec<Vec<Complex>> = vec![vec![Complex::ZERO; s]; k];
        for i in (0..k).rev() {
            let mut b = ws.complex_buffer(s);
            b.copy_from_slice(&rhs[i]);
            if i + 1 < k {
                if let Some(upper) = &self.upper[i] {
                    upper.matvec_into(&x[i + 1], &mut coupled)?;
                    for (target, &delta) in b.iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            factorisations[i].solve_into(&b, &mut x[i])?;
            ws.release_complex_buffer(b);
        }
        Ok(x)
    }

    /// Assembles the full dense system matrix; intended for tests and as a fallback for
    /// ill-conditioned systems.
    pub fn to_dense(&self) -> CMatrix {
        let k = self.block_rows;
        let s = self.block_size;
        let mut full = CMatrix::zeros(k * s, k * s);
        for i in 0..k {
            for r in 0..s {
                for c in 0..s {
                    full[(i * s + r, i * s + c)] = self.diagonal[i][(r, c)];
                    if let Some(lower) = &self.lower[i] {
                        full[(i * s + r, (i - 1) * s + c)] = lower[(r, c)];
                    }
                    if let Some(upper) = &self.upper[i] {
                        full[(i * s + r, (i + 1) * s + c)] = upper[(r, c)];
                    }
                }
            }
        }
        full
    }

    /// Flattens the right-hand side into a single dense vector matching
    /// [`to_dense`](Self::to_dense).
    pub fn dense_rhs(&self) -> Vec<Complex> {
        self.rhs.iter().flat_map(|b| b.iter().copied()).collect()
    }

    /// Solves the system through a dense complex LU factorisation.
    ///
    /// This is `O((K·s)³)` and exists as a numerically independent cross-check and as a
    /// fallback when the blocked elimination encounters a singular pivot block.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the assembled system is singular.
    pub fn solve_dense(&self) -> Result<Vec<Vec<Complex>>> {
        let s = self.block_size;
        let full = self.to_dense();
        let flat = CluDecomposition::new(&full)?.solve(&self.dense_rhs())?;
        Ok(flat.chunks(s).map(|chunk| chunk.to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_block(values: &[&[f64]]) -> CMatrix {
        CMatrix::from_fn(values.len(), values[0].len(), |i, j| Complex::from_real(values[i][j]))
    }

    fn build_sample() -> BlockTridiagonal {
        // 3 block rows of size 2 with a mix of couplings.
        let mut sys = BlockTridiagonal::new(3, 2).unwrap();
        sys.set_diagonal(0, real_block(&[&[4.0, 1.0], &[0.5, 3.0]])).unwrap();
        sys.set_diagonal(1, real_block(&[&[5.0, 0.2], &[0.1, 4.0]])).unwrap();
        sys.set_diagonal(2, real_block(&[&[6.0, 0.0], &[0.3, 5.0]])).unwrap();
        sys.set_upper(0, real_block(&[&[1.0, 0.0], &[0.0, 1.0]])).unwrap();
        sys.set_upper(1, real_block(&[&[0.5, 0.1], &[0.0, 0.5]])).unwrap();
        sys.set_lower(1, real_block(&[&[0.2, 0.0], &[0.1, 0.2]])).unwrap();
        sys.set_lower(2, real_block(&[&[0.3, 0.1], &[0.0, 0.3]])).unwrap();
        sys.set_rhs(0, vec![Complex::from_real(1.0), Complex::from_real(2.0)]).unwrap();
        sys.set_rhs(1, vec![Complex::from_real(-1.0), Complex::from_real(0.5)]).unwrap();
        sys.set_rhs(2, vec![Complex::from_real(3.0), Complex::from_real(0.0)]).unwrap();
        sys
    }

    fn residual(sys: &BlockTridiagonal, x: &[Vec<Complex>]) -> f64 {
        let dense = sys.to_dense();
        let flat: Vec<Complex> = x.iter().flat_map(|b| b.iter().copied()).collect();
        let ax = dense.matvec(&flat).unwrap();
        ax.iter().zip(sys.dense_rhs()).map(|(a, b)| (*a - b).abs()).fold(0.0_f64, f64::max)
    }

    #[test]
    fn blocked_solution_matches_dense() {
        let sys = build_sample();
        let blocked = sys.solve().unwrap();
        let dense = sys.solve_dense().unwrap();
        assert!(residual(&sys, &blocked) < 1e-12);
        for (a, b) in blocked.iter().zip(&dense) {
            for (x, y) in a.iter().zip(b) {
                assert!((*x - *y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn complex_coefficients() {
        let mut sys = BlockTridiagonal::new(2, 1).unwrap();
        sys.set_diagonal(0, CMatrix::from_fn(1, 1, |_, _| Complex::new(1.0, 1.0))).unwrap();
        sys.set_diagonal(1, CMatrix::from_fn(1, 1, |_, _| Complex::new(2.0, -1.0))).unwrap();
        sys.set_upper(0, CMatrix::from_fn(1, 1, |_, _| Complex::new(0.0, 1.0))).unwrap();
        sys.set_lower(1, CMatrix::from_fn(1, 1, |_, _| Complex::new(0.5, 0.0))).unwrap();
        sys.set_rhs(0, vec![Complex::new(1.0, 0.0)]).unwrap();
        sys.set_rhs(1, vec![Complex::new(0.0, 1.0)]).unwrap();
        let x = sys.solve().unwrap();
        assert!(residual(&sys, &x) < 1e-13);
    }

    #[test]
    fn single_block_row_reduces_to_plain_solve() {
        let mut sys = BlockTridiagonal::new(1, 2).unwrap();
        sys.set_diagonal(0, real_block(&[&[2.0, 0.0], &[0.0, 4.0]])).unwrap();
        sys.set_rhs(0, vec![Complex::from_real(2.0), Complex::from_real(8.0)]).unwrap();
        let x = sys.solve().unwrap();
        assert!((x[0][0].re - 1.0).abs() < 1e-14);
        assert!((x[0][1].re - 2.0).abs() < 1e-14);
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(BlockTridiagonal::new(0, 2).is_err());
        assert!(BlockTridiagonal::new(2, 0).is_err());
        let mut sys = BlockTridiagonal::new(2, 2).unwrap();
        assert!(sys.set_lower(0, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_upper(1, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(5, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(0, CMatrix::zeros(3, 3)).is_err());
        assert!(sys.set_rhs(0, vec![Complex::ZERO]).is_err());
    }

    #[test]
    fn singular_pivot_block_reported() {
        let mut sys = BlockTridiagonal::new(2, 1).unwrap();
        // Diagonal block 0 is zero -> elimination must fail with Singular.
        sys.set_diagonal(1, CMatrix::identity(1)).unwrap();
        sys.set_upper(0, CMatrix::identity(1)).unwrap();
        sys.set_lower(1, CMatrix::identity(1)).unwrap();
        assert!(matches!(sys.solve(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn larger_random_like_system_consistency() {
        // Deterministic pseudo-random entries; diagonal dominance keeps it well posed.
        let k = 6;
        let s = 3;
        let mut seed = 7_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut sys = BlockTridiagonal::new(k, s).unwrap();
        for i in 0..k {
            let mut d = CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next()));
            for r in 0..s {
                d[(r, r)] += Complex::from_real(8.0);
            }
            sys.set_diagonal(i, d).unwrap();
            if i > 0 {
                sys.set_lower(i, CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next())))
                    .unwrap();
            }
            if i + 1 < k {
                sys.set_upper(i, CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next())))
                    .unwrap();
            }
            sys.set_rhs(i, (0..s).map(|_| Complex::new(next(), next())).collect()).unwrap();
        }
        let x = sys.solve().unwrap();
        assert!(residual(&sys, &x) < 1e-11);
        let dense = sys.solve_dense().unwrap();
        for (a, b) in x.iter().zip(&dense) {
            for (p, q) in a.iter().zip(b) {
                assert!((*p - *q).abs() < 1e-9);
            }
        }
    }
}
