//! A complex block-tridiagonal linear-system solver.
//!
//! The boundary equations of a quasi-birth-death process couple the probability vectors
//! of neighbouring queue-length levels only, so the linear system that determines them
//! is block tridiagonal.  Solving it by block forward elimination (a block Thomas
//! algorithm) costs `O(K s³)` instead of the `O(K³ s³)` of a dense factorisation, which
//! is what makes the exact spectral-expansion solution practical for systems with many
//! servers.

use crate::clu::CluDecomposition;
use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::matrix::Matrix;
use crate::parallel::ThreadPool;
use crate::workspace::Workspace;
use crate::Result;

/// Returns `true` when every off-diagonal element of the square matrix is
/// exactly zero.  The QBD departure matrix `C` and arrival matrix `B = λI` are
/// diagonal, so the boundary systems' super-diagonal blocks usually are too;
/// detecting that turns the `O(s³)` Schur-complement product of the block
/// elimination into an `O(s²)` column scaling.
fn is_diagonal_complex(m: &CMatrix) -> bool {
    let s = m.rows();
    for (i, row) in m.as_slice().chunks_exact(s).enumerate() {
        for (j, z) in row.iter().enumerate() {
            if i != j && *z != Complex::ZERO {
                return false;
            }
        }
    }
    true
}

/// A sub- or super-diagonal coupling block of [`RealBlockTridiagonal`].
///
/// The QBD boundary couplings are `B = λI` and the diagonal departure matrices
/// `C_j`, so the solver stores them packed — `s` numbers instead of a dense
/// `s × s` block — and dispatches straight to the diagonal fast paths without
/// materialising `s² − s` zeros or scanning for structure.
#[derive(Debug, Clone)]
enum RealCoupling {
    /// A general dense coupling block.
    Dense(Matrix),
    /// A diagonal coupling block, holding only the packed diagonal.
    Diagonal(Vec<f64>),
}

/// Real twin of [`is_diagonal_complex`].
fn is_diagonal_real(m: &Matrix) -> bool {
    let s = m.rows();
    for (i, row) in m.as_slice().chunks_exact(s).enumerate() {
        for (j, v) in row.iter().enumerate() {
            // urs-analyze: allow(float_cmp, reason = "exact-zero structure probe: any nonzero off-diagonal disables the fast path")
            if i != j && *v != 0.0 {
                return false;
            }
        }
    }
    true
}

/// The Schur update `D ← D − W·U` for a diagonal `U`, which collapses to a
/// column scaling: `diag[c·stride]` reads `U`'s diagonal either packed
/// (`stride = 1`) or off a dense block (`stride = s + 1`), so the packed and
/// dense representations run the byte-for-byte identical update.
fn schur_diagonal_update(d_cur: &mut Matrix, w: &Matrix, diag: &[f64], stride: usize, s: usize) {
    for (d_row, w_row) in d_cur.as_mut_slice().chunks_exact_mut(s).zip(w.as_slice().chunks_exact(s))
    {
        for (c, (x, &wv)) in d_row.iter_mut().zip(w_row).enumerate() {
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            *x -= wv * diag[c * stride];
        }
    }
}

/// A square block-tridiagonal system with `K` block rows of size `s` each.
///
/// Block row `i` represents the equation
///
/// ```text
/// L_i · x_{i-1} + D_i · x_i + U_i · x_{i+1} = b_i
/// ```
///
/// where `L_0` and `U_{K-1}` are absent.  The right-hand sides and solutions are complex
/// column vectors of length `s`.
///
/// # Example
///
/// ```
/// use urs_linalg::{BlockTridiagonal, CMatrix, Complex};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Two decoupled 1x1 blocks: 2·x0 = 2, 3·x1 = 6.
/// let mut sys = BlockTridiagonal::new(2, 1)?;
/// sys.set_diagonal(0, CMatrix::from_fn(1, 1, |_, _| Complex::from_real(2.0)))?;
/// sys.set_diagonal(1, CMatrix::from_fn(1, 1, |_, _| Complex::from_real(3.0)))?;
/// sys.set_rhs(0, vec![Complex::from_real(2.0)])?;
/// sys.set_rhs(1, vec![Complex::from_real(6.0)])?;
/// let x = sys.solve()?;
/// assert!((x[0][0].re - 1.0).abs() < 1e-12 && (x[1][0].re - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockTridiagonal {
    block_rows: usize,
    block_size: usize,
    diagonal: Vec<CMatrix>,
    lower: Vec<Option<CMatrix>>,
    upper: Vec<Option<CMatrix>>,
    rhs: Vec<Vec<Complex>>,
}

impl BlockTridiagonal {
    /// Creates an empty system with `block_rows` block rows of size `block_size`.
    ///
    /// All blocks start as zero matrices and all right-hand sides as zero vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if either dimension is zero.
    pub fn new(block_rows: usize, block_size: usize) -> Result<Self> {
        if block_rows == 0 || block_size == 0 {
            return Err(LinalgError::InvalidInput(
                "block-tridiagonal system must have at least one non-empty block".into(),
            ));
        }
        Ok(BlockTridiagonal {
            block_rows,
            block_size,
            diagonal: vec![CMatrix::zeros(block_size, block_size); block_rows],
            lower: vec![None; block_rows],
            upper: vec![None; block_rows],
            rhs: vec![vec![Complex::ZERO; block_size]; block_rows],
        })
    }

    /// Number of block rows `K`.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Size `s` of each block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn check_block(&self, block: &CMatrix) -> Result<()> {
        if block.shape() != (self.block_size, self.block_size) {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal block assignment",
                left: (self.block_size, self.block_size),
                right: block.shape(),
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.block_rows {
            return Err(LinalgError::InvalidInput(format!(
                "block row {row} out of range (system has {} block rows)",
                self.block_rows
            )));
        }
        Ok(())
    }

    /// Sets the diagonal block `D_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or block shape is invalid.
    pub fn set_diagonal(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        self.check_block(&block)?;
        self.diagonal[row] = block;
        Ok(())
    }

    /// Sets the sub-diagonal block `L_row` (coupling to `x_{row-1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row == 0`, the row index is out of range, or the block has
    /// the wrong shape.
    pub fn set_lower(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        if row == 0 {
            return Err(LinalgError::InvalidInput("block row 0 has no sub-diagonal block".into()));
        }
        self.check_block(&block)?;
        self.lower[row] = Some(block);
        Ok(())
    }

    /// Sets the super-diagonal block `U_row` (coupling to `x_{row+1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is the last block row, out of range, or the block has
    /// the wrong shape.
    pub fn set_upper(&mut self, row: usize, block: CMatrix) -> Result<()> {
        self.check_row(row)?;
        if row + 1 == self.block_rows {
            return Err(LinalgError::InvalidInput(
                "the last block row has no super-diagonal block".into(),
            ));
        }
        self.check_block(&block)?;
        self.upper[row] = Some(block);
        Ok(())
    }

    /// Sets the right-hand side vector `b_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or vector length is invalid.
    pub fn set_rhs(&mut self, row: usize, rhs: Vec<Complex>) -> Result<()> {
        self.check_row(row)?;
        if rhs.len() != self.block_size {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal right-hand side",
                left: (self.block_size, 1),
                right: (rhs.len(), 1),
            });
        }
        self.rhs[row] = rhs;
        Ok(())
    }

    /// Solves the system by block forward elimination and back substitution.
    ///
    /// Returns the solution as one complex vector per block row.
    ///
    /// The elimination runs entirely on the in-place kernels: each block row costs
    /// *one* LU factorisation (the `W = L_i·D'⁻¹` product reuses the previous row's
    /// factors through [`CluDecomposition::solve_right_matrix_into`] instead of
    /// factorising the transpose a second time) and all temporaries come from one
    /// [`Workspace`], so the steady-state loop allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot block becomes singular during the
    /// elimination (callers may then fall back to a dense solve).
    pub fn solve(&self) -> Result<Vec<Vec<Complex>>> {
        self.solve_with(&ThreadPool::serial())
    }

    /// [`solve`](Self::solve) with the per-block kernels — the `W = L_i·D'⁻¹` right
    /// solve, the `D'_i = D_i − W·U_{i-1}` multiply-accumulate, and the diagonal-block
    /// factorisation — running on the workers of `pool`.
    ///
    /// The block recurrence itself is sequential (row `i` needs row `i-1`'s factors),
    /// so the parallelism lives *inside* each block operation; every kernel's banded
    /// partition preserves the serial accumulation order, making the solution
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus [`LinalgError::WorkerPanic`] if a worker
    /// panicked.
    pub fn solve_with(&self, pool: &ThreadPool) -> Result<Vec<Vec<Complex>>> {
        let k = self.block_rows;
        let s = self.block_size;
        let mut ws = Workspace::new();
        let mut rhs: Vec<Vec<Complex>> = self.rhs.clone();

        // Forward elimination: remove L_i using block row i-1.  Each iteration
        // factorises the (updated) diagonal block exactly once and keeps the factors
        // for the back substitution.
        let mut factorisations: Vec<CluDecomposition> = Vec::with_capacity(k);
        let mut w = ws.complex_matrix(s, s);
        let mut coupled = ws.complex_buffer(s);
        for i in 0..k {
            // Working copy of D_i in pooled storage (consumed by the factorisation).
            let mut d_cur = ws.complex_matrix(s, s);
            d_cur.as_mut_slice().copy_from_slice(self.diagonal[i].as_slice());
            if i > 0 {
                if let Some(lower) = &self.lower[i] {
                    // W · D'_{i-1} = L_i, then D'_i = D_i − W·U_{i-1} and
                    // b'_i = b_i − W·b'_{i-1}.
                    factorisations[i - 1]
                        .solve_right_matrix_into_with(lower, &mut w, &mut ws, pool)?;
                    if let Some(upper_prev) = &self.upper[i - 1] {
                        if is_diagonal_complex(upper_prev) {
                            // U_{i-1} = diag(u): (W·U)_{r,c} = W_{r,c}·u_c, so the
                            // Schur product collapses to a column scaling — O(s²)
                            // instead of O(s³).  Element-wise, hence independent of
                            // the pool partition: bit-identical at any thread count.
                            let u = upper_prev.as_slice();
                            for (d_row, w_row) in d_cur
                                .as_mut_slice()
                                .chunks_exact_mut(s)
                                .zip(w.as_slice().chunks_exact(s))
                            {
                                for (c, (x, &wv)) in d_row.iter_mut().zip(w_row).enumerate() {
                                    // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                                    *x -= wv * u[c * s + c];
                                }
                            }
                        } else {
                            d_cur.gemm_with(
                                Complex::from_real(-1.0),
                                &w,
                                upper_prev,
                                Complex::ONE,
                                pool,
                            )?;
                        }
                    }
                    w.matvec_into(&rhs[i - 1], &mut coupled)?;
                    for (target, &delta) in rhs[i].iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            factorisations.push(CluDecomposition::from_matrix_with(d_cur, pool)?);
        }
        ws.release_complex_matrix(w);

        // Back substitution.
        let mut x: Vec<Vec<Complex>> = vec![vec![Complex::ZERO; s]; k];
        for i in (0..k).rev() {
            let mut b = ws.complex_buffer(s);
            b.copy_from_slice(&rhs[i]);
            if i + 1 < k {
                if let Some(upper) = &self.upper[i] {
                    upper.matvec_into(&x[i + 1], &mut coupled)?;
                    for (target, &delta) in b.iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            factorisations[i].solve_into(&b, &mut x[i])?;
            ws.release_complex_buffer(b);
        }
        Ok(x)
    }

    /// Assembles the full dense system matrix; intended for tests and as a fallback for
    /// ill-conditioned systems.
    pub fn to_dense(&self) -> CMatrix {
        let k = self.block_rows;
        let s = self.block_size;
        let mut full = CMatrix::zeros(k * s, k * s);
        for i in 0..k {
            for r in 0..s {
                for c in 0..s {
                    full[(i * s + r, i * s + c)] = self.diagonal[i][(r, c)];
                    if let Some(lower) = &self.lower[i] {
                        full[(i * s + r, (i - 1) * s + c)] = lower[(r, c)];
                    }
                    if let Some(upper) = &self.upper[i] {
                        full[(i * s + r, (i + 1) * s + c)] = upper[(r, c)];
                    }
                }
            }
        }
        full
    }

    /// Flattens the right-hand side into a single dense vector matching
    /// [`to_dense`](Self::to_dense).
    pub fn dense_rhs(&self) -> Vec<Complex> {
        self.rhs.iter().flat_map(|b| b.iter().copied()).collect()
    }

    /// Solves the system through a dense complex LU factorisation.
    ///
    /// This is `O((K·s)³)` and exists as a numerically independent cross-check and as a
    /// fallback when the blocked elimination encounters a singular pivot block.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the assembled system is singular.
    pub fn solve_dense(&self) -> Result<Vec<Vec<Complex>>> {
        let s = self.block_size;
        let full = self.to_dense();
        let flat = CluDecomposition::new(&full)?.solve(&self.dense_rhs())?;
        Ok(flat.chunks(s).map(|chunk| chunk.to_vec()).collect())
    }
}

/// A square block-tridiagonal system with *real* blocks — the all-real twin of
/// [`BlockTridiagonal`].
///
/// The matrix-geometric boundary system is entirely real (the transposed local
/// generators on the diagonal, `−λI` below, the transposed departure matrices
/// above), so eliminating it in real arithmetic halves the memory traffic and
/// replaces every complex multiply-add (4 real multiplies) with a real one.
/// The elimination, the diagonal-super-block fast path, and the
/// [`Workspace`]-pooled allocation discipline mirror the complex solver
/// exactly; see [`BlockTridiagonal::solve_with`] for the determinism contract.
#[derive(Debug, Clone)]
pub struct RealBlockTridiagonal {
    block_rows: usize,
    block_size: usize,
    diagonal: Vec<Matrix>,
    lower: Vec<Option<RealCoupling>>,
    upper: Vec<Option<RealCoupling>>,
    rhs: Vec<Vec<f64>>,
}

impl RealBlockTridiagonal {
    /// Creates an empty system with `block_rows` block rows of size
    /// `block_size`; all blocks start as zeros.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if either dimension is zero.
    pub fn new(block_rows: usize, block_size: usize) -> Result<Self> {
        if block_rows == 0 || block_size == 0 {
            return Err(LinalgError::InvalidInput(
                "block-tridiagonal system must have at least one non-empty block".into(),
            ));
        }
        Ok(RealBlockTridiagonal {
            block_rows,
            block_size,
            diagonal: vec![Matrix::zeros(block_size, block_size); block_rows],
            lower: vec![None; block_rows],
            upper: vec![None; block_rows],
            rhs: vec![vec![0.0; block_size]; block_rows],
        })
    }

    /// Number of block rows `K`.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Size `s` of each block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn check_block(&self, block: &Matrix) -> Result<()> {
        if block.shape() != (self.block_size, self.block_size) {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal block assignment",
                left: (self.block_size, self.block_size),
                right: block.shape(),
            });
        }
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.block_rows {
            return Err(LinalgError::InvalidInput(format!(
                "block row {row} out of range (system has {} block rows)",
                self.block_rows
            )));
        }
        Ok(())
    }

    /// Sets the diagonal block `D_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or block shape is invalid.
    pub fn set_diagonal(&mut self, row: usize, block: Matrix) -> Result<()> {
        self.check_row(row)?;
        self.check_block(&block)?;
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.diagonal[row] = block;
        Ok(())
    }

    /// Sets the sub-diagonal block `L_row` (coupling to `x_{row-1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row == 0`, the row index is out of range, or the
    /// block has the wrong shape.
    pub fn set_lower(&mut self, row: usize, block: Matrix) -> Result<()> {
        self.check_row(row)?;
        if row == 0 {
            return Err(LinalgError::InvalidInput("block row 0 has no sub-diagonal block".into()));
        }
        self.check_block(&block)?;
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.lower[row] = Some(RealCoupling::Dense(block));
        Ok(())
    }

    /// Sets the sub-diagonal block `L_row` to a **diagonal** matrix given by its
    /// packed diagonal, avoiding the dense `s × s` materialisation.
    ///
    /// # Errors
    ///
    /// Same as [`set_lower`](Self::set_lower), with the length of `diag`
    /// standing in for the block shape.
    pub fn set_lower_diagonal(&mut self, row: usize, diag: Vec<f64>) -> Result<()> {
        self.check_row(row)?;
        if row == 0 {
            return Err(LinalgError::InvalidInput("block row 0 has no sub-diagonal block".into()));
        }
        self.check_diag(&diag)?;
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.lower[row] = Some(RealCoupling::Diagonal(diag));
        Ok(())
    }

    /// Sets the super-diagonal block `U_row` (coupling to `x_{row+1}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is the last block row, out of range, or the
    /// block has the wrong shape.
    pub fn set_upper(&mut self, row: usize, block: Matrix) -> Result<()> {
        self.check_row(row)?;
        if row + 1 == self.block_rows {
            return Err(LinalgError::InvalidInput(
                "the last block row has no super-diagonal block".into(),
            ));
        }
        self.check_block(&block)?;
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.upper[row] = Some(RealCoupling::Dense(block));
        Ok(())
    }

    /// Sets the super-diagonal block `U_row` to a **diagonal** matrix given by
    /// its packed diagonal, avoiding the dense `s × s` materialisation.
    ///
    /// # Errors
    ///
    /// Same as [`set_upper`](Self::set_upper), with the length of `diag`
    /// standing in for the block shape.
    pub fn set_upper_diagonal(&mut self, row: usize, diag: Vec<f64>) -> Result<()> {
        self.check_row(row)?;
        if row + 1 == self.block_rows {
            return Err(LinalgError::InvalidInput(
                "the last block row has no super-diagonal block".into(),
            ));
        }
        self.check_diag(&diag)?;
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.upper[row] = Some(RealCoupling::Diagonal(diag));
        Ok(())
    }

    fn check_diag(&self, diag: &[f64]) -> Result<()> {
        if diag.len() != self.block_size {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal diagonal coupling assignment",
                left: (self.block_size, self.block_size),
                right: (diag.len(), diag.len()),
            });
        }
        Ok(())
    }

    /// Sets the right-hand side vector `b_row`.
    ///
    /// # Errors
    ///
    /// Returns an error if the row index or vector length is invalid.
    pub fn set_rhs(&mut self, row: usize, rhs: Vec<f64>) -> Result<()> {
        self.check_row(row)?;
        if rhs.len() != self.block_size {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal right-hand side",
                left: (self.block_size, 1),
                right: (rhs.len(), 1),
            });
        }
        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
        self.rhs[row] = rhs;
        Ok(())
    }

    /// Solves the system by block forward elimination and back substitution;
    /// see [`BlockTridiagonal::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot block becomes singular
    /// during the elimination.
    pub fn solve(&self) -> Result<Vec<Vec<f64>>> {
        self.solve_with(&ThreadPool::serial())
    }

    /// [`solve`](Self::solve) with the per-block kernels running on `pool`;
    /// the block recurrence stays sequential and every kernel preserves its
    /// serial accumulation order, so the solution is bit-identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus [`LinalgError::WorkerPanic`] if a
    /// worker panicked.
    pub fn solve_with(&self, pool: &ThreadPool) -> Result<Vec<Vec<f64>>> {
        let k = self.block_rows;
        let s = self.block_size;
        let mut ws = Workspace::new();
        let mut rhs: Vec<Vec<f64>> = self.rhs.clone();

        let mut factorisations: Vec<LuDecomposition> = Vec::with_capacity(k);
        let mut w = ws.real_matrix(s, s);
        let mut coupled = ws.real_buffer(s);
        for i in 0..k {
            let mut d_cur = ws.real_matrix(s, s);
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            d_cur.as_mut_slice().copy_from_slice(self.diagonal[i].as_slice());
            if i > 0 {
                // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                if let Some(lower) = &self.lower[i] {
                    match lower {
                        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                        RealCoupling::Dense(l) => factorisations[i - 1]
                            .solve_right_matrix_into_with(l, &mut w, &mut ws, pool)?,
                        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                        RealCoupling::Diagonal(l) => factorisations[i - 1]
                            .solve_right_diagonal_into_with(l, &mut w, &mut ws, pool)?,
                    }
                    // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                    match &self.upper[i - 1] {
                        Some(RealCoupling::Diagonal(u)) => {
                            schur_diagonal_update(&mut d_cur, &w, u, 1, s);
                        }
                        Some(RealCoupling::Dense(u)) if is_diagonal_real(u) => {
                            // Schur product against a diagonal block collapses to a
                            // column scaling; see the complex solver.
                            schur_diagonal_update(&mut d_cur, &w, u.as_slice(), s + 1, s);
                        }
                        Some(RealCoupling::Dense(u)) => {
                            d_cur.gemm_with(-1.0, &w, u, 1.0, pool)?;
                        }
                        None => {}
                    }
                    // b'_i = b_i − W·b'_{i-1}, with the same per-row ascending
                    // accumulation as `Matrix::matvec`.
                    for (ci, w_row) in w.as_slice().chunks_exact(s).enumerate() {
                        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                        coupled[ci] = w_row.iter().zip(rhs[i - 1].iter()).map(|(a, b)| a * b).sum();
                    }
                    // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                    for (target, &delta) in rhs[i].iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            factorisations.push(LuDecomposition::from_matrix_with(d_cur, pool)?);
        }
        ws.release_real_matrix(w);

        let mut x: Vec<Vec<f64>> = vec![vec![0.0; s]; k];
        for i in (0..k).rev() {
            let mut b = ws.real_buffer(s);
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            b.copy_from_slice(&rhs[i]);
            if i + 1 < k {
                // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                if let Some(upper) = &self.upper[i] {
                    match upper {
                        RealCoupling::Dense(u) => {
                            for (ci, u_row) in u.as_slice().chunks_exact(s).enumerate() {
                                // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                                coupled[ci] =
                                    // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                                    u_row.iter().zip(x[i + 1].iter()).map(|(a, b)| a * b).sum();
                            }
                        }
                        RealCoupling::Diagonal(u) => {
                            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                            for (ci, (&uv, &xv)) in u.iter().zip(x[i + 1].iter()).enumerate() {
                                // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                                coupled[ci] = uv * xv;
                            }
                        }
                    }
                    for (target, &delta) in b.iter_mut().zip(coupled.iter()) {
                        *target -= delta;
                    }
                }
            }
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            factorisations[i].solve_into(&b, &mut x[i])?;
            ws.release_real_buffer(b);
        }
        Ok(x)
    }

    /// Assembles the full dense system matrix (tests and fallback).
    pub fn to_dense(&self) -> Matrix {
        let k = self.block_rows;
        let s = self.block_size;
        let mut full = Matrix::zeros(k * s, k * s);
        let place = |coupling: &RealCoupling, row0: usize, col0: usize, full: &mut Matrix| {
            match coupling {
                RealCoupling::Dense(m) => {
                    for r in 0..s {
                        for c in 0..s {
                            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                            full[(row0 + r, col0 + c)] = m[(r, c)];
                        }
                    }
                }
                RealCoupling::Diagonal(d) => {
                    for (r, &v) in d.iter().enumerate() {
                        // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                        full[(row0 + r, col0 + r)] = v;
                    }
                }
            }
        };
        for i in 0..k {
            for r in 0..s {
                for c in 0..s {
                    // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
                    full[(i * s + r, i * s + c)] = self.diagonal[i][(r, c)];
                }
            }
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            if let Some(lower) = &self.lower[i] {
                place(lower, i * s, (i - 1) * s, &mut full);
            }
            // urs-analyze: allow(slice_index, reason = "block offsets bounded by the layout the setters validated; packed coupling path")
            if let Some(upper) = &self.upper[i] {
                place(upper, i * s, (i + 1) * s, &mut full);
            }
        }
        full
    }

    /// Flattens the right-hand side into a single dense vector matching
    /// [`to_dense`](Self::to_dense).
    pub fn dense_rhs(&self) -> Vec<f64> {
        self.rhs.iter().flat_map(|b| b.iter().copied()).collect()
    }

    /// Solves the system through a dense real LU factorisation — an
    /// `O((K·s)³)` numerically independent cross-check and the fallback for a
    /// singular pivot block.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the assembled system is singular.
    pub fn solve_dense(&self) -> Result<Vec<Vec<f64>>> {
        let s = self.block_size;
        let full = self.to_dense();
        let flat = LuDecomposition::new(&full)?.solve(&self.dense_rhs())?;
        Ok(flat.chunks(s).map(|chunk| chunk.to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_block(values: &[&[f64]]) -> CMatrix {
        CMatrix::from_fn(values.len(), values[0].len(), |i, j| Complex::from_real(values[i][j]))
    }

    fn build_sample() -> BlockTridiagonal {
        // 3 block rows of size 2 with a mix of couplings.
        let mut sys = BlockTridiagonal::new(3, 2).unwrap();
        sys.set_diagonal(0, real_block(&[&[4.0, 1.0], &[0.5, 3.0]])).unwrap();
        sys.set_diagonal(1, real_block(&[&[5.0, 0.2], &[0.1, 4.0]])).unwrap();
        sys.set_diagonal(2, real_block(&[&[6.0, 0.0], &[0.3, 5.0]])).unwrap();
        sys.set_upper(0, real_block(&[&[1.0, 0.0], &[0.0, 1.0]])).unwrap();
        sys.set_upper(1, real_block(&[&[0.5, 0.1], &[0.0, 0.5]])).unwrap();
        sys.set_lower(1, real_block(&[&[0.2, 0.0], &[0.1, 0.2]])).unwrap();
        sys.set_lower(2, real_block(&[&[0.3, 0.1], &[0.0, 0.3]])).unwrap();
        sys.set_rhs(0, vec![Complex::from_real(1.0), Complex::from_real(2.0)]).unwrap();
        sys.set_rhs(1, vec![Complex::from_real(-1.0), Complex::from_real(0.5)]).unwrap();
        sys.set_rhs(2, vec![Complex::from_real(3.0), Complex::from_real(0.0)]).unwrap();
        sys
    }

    fn residual(sys: &BlockTridiagonal, x: &[Vec<Complex>]) -> f64 {
        let dense = sys.to_dense();
        let flat: Vec<Complex> = x.iter().flat_map(|b| b.iter().copied()).collect();
        let ax = dense.matvec(&flat).unwrap();
        ax.iter().zip(sys.dense_rhs()).map(|(a, b)| (*a - b).abs()).fold(0.0_f64, f64::max)
    }

    #[test]
    fn blocked_solution_matches_dense() {
        let sys = build_sample();
        let blocked = sys.solve().unwrap();
        let dense = sys.solve_dense().unwrap();
        assert!(residual(&sys, &blocked) < 1e-12);
        for (a, b) in blocked.iter().zip(&dense) {
            for (x, y) in a.iter().zip(b) {
                assert!((*x - *y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn complex_coefficients() {
        let mut sys = BlockTridiagonal::new(2, 1).unwrap();
        sys.set_diagonal(0, CMatrix::from_fn(1, 1, |_, _| Complex::new(1.0, 1.0))).unwrap();
        sys.set_diagonal(1, CMatrix::from_fn(1, 1, |_, _| Complex::new(2.0, -1.0))).unwrap();
        sys.set_upper(0, CMatrix::from_fn(1, 1, |_, _| Complex::new(0.0, 1.0))).unwrap();
        sys.set_lower(1, CMatrix::from_fn(1, 1, |_, _| Complex::new(0.5, 0.0))).unwrap();
        sys.set_rhs(0, vec![Complex::new(1.0, 0.0)]).unwrap();
        sys.set_rhs(1, vec![Complex::new(0.0, 1.0)]).unwrap();
        let x = sys.solve().unwrap();
        assert!(residual(&sys, &x) < 1e-13);
    }

    #[test]
    fn single_block_row_reduces_to_plain_solve() {
        let mut sys = BlockTridiagonal::new(1, 2).unwrap();
        sys.set_diagonal(0, real_block(&[&[2.0, 0.0], &[0.0, 4.0]])).unwrap();
        sys.set_rhs(0, vec![Complex::from_real(2.0), Complex::from_real(8.0)]).unwrap();
        let x = sys.solve().unwrap();
        assert!((x[0][0].re - 1.0).abs() < 1e-14);
        assert!((x[0][1].re - 2.0).abs() < 1e-14);
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(BlockTridiagonal::new(0, 2).is_err());
        assert!(BlockTridiagonal::new(2, 0).is_err());
        let mut sys = BlockTridiagonal::new(2, 2).unwrap();
        assert!(sys.set_lower(0, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_upper(1, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(5, CMatrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(0, CMatrix::zeros(3, 3)).is_err());
        assert!(sys.set_rhs(0, vec![Complex::ZERO]).is_err());
    }

    #[test]
    fn singular_pivot_block_reported() {
        let mut sys = BlockTridiagonal::new(2, 1).unwrap();
        // Diagonal block 0 is zero -> elimination must fail with Singular.
        sys.set_diagonal(1, CMatrix::identity(1)).unwrap();
        sys.set_upper(0, CMatrix::identity(1)).unwrap();
        sys.set_lower(1, CMatrix::identity(1)).unwrap();
        assert!(matches!(sys.solve(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn larger_random_like_system_consistency() {
        // Deterministic pseudo-random entries; diagonal dominance keeps it well posed.
        let k = 6;
        let s = 3;
        let mut seed = 7_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut sys = BlockTridiagonal::new(k, s).unwrap();
        for i in 0..k {
            let mut d = CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next()));
            for r in 0..s {
                d[(r, r)] += Complex::from_real(8.0);
            }
            sys.set_diagonal(i, d).unwrap();
            if i > 0 {
                sys.set_lower(i, CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next())))
                    .unwrap();
            }
            if i + 1 < k {
                sys.set_upper(i, CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next())))
                    .unwrap();
            }
            sys.set_rhs(i, (0..s).map(|_| Complex::new(next(), next())).collect()).unwrap();
        }
        let x = sys.solve().unwrap();
        assert!(residual(&sys, &x) < 1e-11);
        let dense = sys.solve_dense().unwrap();
        for (a, b) in x.iter().zip(&dense) {
            for (p, q) in a.iter().zip(b) {
                assert!((*p - *q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn diagonal_upper_fast_path_matches_dense_solve() {
        // Diagonal super-blocks (the QBD boundary shape) take the O(s²) Schur
        // fast path; the solution must still satisfy the assembled system.
        let k = 5;
        let s = 4;
        let mut seed = 11_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut sys = BlockTridiagonal::new(k, s).unwrap();
        for i in 0..k {
            let mut d = CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next()));
            for r in 0..s {
                d[(r, r)] += Complex::from_real(9.0);
            }
            sys.set_diagonal(i, d).unwrap();
            if i > 0 {
                sys.set_lower(i, CMatrix::from_fn(s, s, |_, _| Complex::new(next(), next())))
                    .unwrap();
            }
            if i + 1 < k {
                let mut u = CMatrix::zeros(s, s);
                for r in 0..s {
                    u[(r, r)] = Complex::new(next(), next());
                }
                sys.set_upper(i, u).unwrap();
            }
            sys.set_rhs(i, (0..s).map(|_| Complex::new(next(), next())).collect()).unwrap();
        }
        let x = sys.solve().unwrap();
        assert!(residual(&sys, &x) < 1e-12);
        let dense = sys.solve_dense().unwrap();
        for (a, b) in x.iter().zip(&dense) {
            for (p, q) in a.iter().zip(b) {
                assert!((*p - *q).abs() < 1e-10);
            }
        }
    }

    fn build_real_sample(diagonal_upper: bool) -> RealBlockTridiagonal {
        let k = 6;
        let s = 3;
        let mut seed = 23_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut sys = RealBlockTridiagonal::new(k, s).unwrap();
        for i in 0..k {
            let mut d = Matrix::from_fn(s, s, |_, _| next());
            for r in 0..s {
                d[(r, r)] += 7.0;
            }
            sys.set_diagonal(i, d).unwrap();
            if i > 0 {
                sys.set_lower(i, Matrix::from_fn(s, s, |_, _| next())).unwrap();
            }
            if i + 1 < k {
                let u = if diagonal_upper {
                    Matrix::from_diagonal(&[next(), next(), next()])
                } else {
                    Matrix::from_fn(s, s, |_, _| next())
                };
                sys.set_upper(i, u).unwrap();
            }
            sys.set_rhs(i, (0..s).map(|_| next()).collect()).unwrap();
        }
        sys
    }

    #[test]
    fn real_system_matches_dense_solve() {
        for &diag_upper in &[false, true] {
            let sys = build_real_sample(diag_upper);
            let x = sys.solve().unwrap();
            let dense = sys.solve_dense().unwrap();
            let full = sys.to_dense();
            let flat: Vec<f64> = x.iter().flat_map(|b| b.iter().copied()).collect();
            let ax = full.matvec(&flat).unwrap();
            let res =
                ax.iter().zip(sys.dense_rhs()).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max);
            assert!(res < 1e-12, "residual {res} (diag_upper={diag_upper})");
            for (a, b) in x.iter().zip(&dense) {
                for (p, q) in a.iter().zip(b) {
                    assert!((p - q).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn real_system_parallel_matches_serial_bitwise() {
        let sys = build_real_sample(true);
        let serial = sys.solve().unwrap();
        let pool = ThreadPool::new(4);
        let parallel = sys.solve_with(&pool).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            for (p, q) in a.iter().zip(b) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn real_packed_diagonal_couplings_match_dense_bitwise() {
        // Same system twice: once with the diagonal couplings handed over as
        // dense s × s blocks, once packed.  The packed storage must dispatch to
        // byte-for-byte the same substitutions, so the solutions are bit-equal.
        let k = 6;
        let s = 3;
        let mut seed = 41_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut dense_sys = RealBlockTridiagonal::new(k, s).unwrap();
        let mut packed_sys = RealBlockTridiagonal::new(k, s).unwrap();
        for i in 0..k {
            let mut d = Matrix::from_fn(s, s, |_, _| next());
            for r in 0..s {
                d[(r, r)] += 7.0;
            }
            dense_sys.set_diagonal(i, d.clone()).unwrap();
            packed_sys.set_diagonal(i, d).unwrap();
            if i > 0 {
                let l = vec![next(), next(), next()];
                dense_sys.set_lower(i, Matrix::from_diagonal(&l)).unwrap();
                packed_sys.set_lower_diagonal(i, l).unwrap();
            }
            if i + 1 < k {
                let u = vec![next(), next(), next()];
                dense_sys.set_upper(i, Matrix::from_diagonal(&u)).unwrap();
                packed_sys.set_upper_diagonal(i, u).unwrap();
            }
            let rhs: Vec<f64> = (0..s).map(|_| next()).collect();
            dense_sys.set_rhs(i, rhs.clone()).unwrap();
            packed_sys.set_rhs(i, rhs).unwrap();
        }
        let dense_x = dense_sys.solve().unwrap();
        let packed_x = packed_sys.solve().unwrap();
        for (a, b) in dense_x.iter().zip(&packed_x) {
            for (p, q) in a.iter().zip(b) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
        // The dense fallback assembles the packed couplings correctly too.
        let packed_dense = packed_sys.solve_dense().unwrap();
        for (a, b) in packed_x.iter().zip(&packed_dense) {
            for (p, q) in a.iter().zip(b) {
                assert!((p - q).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn real_packed_diagonal_setters_validate() {
        let mut sys = RealBlockTridiagonal::new(3, 2).unwrap();
        assert!(sys.set_lower_diagonal(0, vec![1.0, 2.0]).is_err());
        assert!(sys.set_upper_diagonal(2, vec![1.0, 2.0]).is_err());
        assert!(sys.set_lower_diagonal(1, vec![1.0]).is_err());
        assert!(sys.set_upper_diagonal(1, vec![1.0, 2.0, 3.0]).is_err());
        assert!(sys.set_lower_diagonal(1, vec![1.0, 2.0]).is_ok());
        assert!(sys.set_upper_diagonal(1, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn real_invalid_configuration_rejected() {
        assert!(RealBlockTridiagonal::new(0, 2).is_err());
        assert!(RealBlockTridiagonal::new(2, 0).is_err());
        let mut sys = RealBlockTridiagonal::new(2, 2).unwrap();
        assert!(sys.set_lower(0, Matrix::zeros(2, 2)).is_err());
        assert!(sys.set_upper(1, Matrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(5, Matrix::zeros(2, 2)).is_err());
        assert!(sys.set_diagonal(0, Matrix::zeros(3, 3)).is_err());
        assert!(sys.set_rhs(0, vec![0.0]).is_err());
    }
}
