//! A small double-precision complex number type.
//!
//! The workspace deliberately avoids external numeric crates, so the spectral-expansion
//! machinery carries its own complex arithmetic.  The type is `Copy`, supports the usual
//! operators against both `Complex` and `f64` operands, and provides the handful of
//! transcendental helpers (modulus, argument, square root, exponential) that the
//! eigenvalue code needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use urs_linalg::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `(r, θ)`.
    ///
    /// ```
    /// use urs_linalg::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Modulus (absolute value), computed with `hypot` to avoid overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid premature overflow/underflow.
    #[inline]
    pub fn recip(self) -> Self {
        Complex::ONE / self
    }

    /// Principal square root.
    ///
    /// ```
    /// use urs_linalg::Complex;
    /// let z = Complex::new(-4.0, 0.0).sqrt();
    /// assert!((z.re).abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    pub fn sqrt(self) -> Self {
        // urs-analyze: allow(float_cmp, reason = "exact-zero special case mirroring IEEE sqrt(±0) = 0; an epsilon would change nearby values")
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).sqrt();
        let im = if self.im >= 0.0 { im_mag } else { -im_mag };
        Complex { re, im }
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// Raises the number to an integer power by repeated squaring.
    pub fn powi(self, mut exp: u32) -> Self {
        let mut base = self;
        let mut acc = Complex::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` when the imaginary part is negligible relative to the modulus.
    ///
    /// `tol` is an absolute tolerance on `|im|` when the modulus is tiny, otherwise a
    /// relative one.
    #[inline]
    pub fn is_approx_real(self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex { re: self.re + rhs, im: self.im }
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex { re: self.re - rhs, im: self.im }
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self - rhs.re, im: -rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex { re: self.re * rhs, im: self.im * rhs }
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    /// Complex division using Smith's algorithm for numerical robustness.
    fn div(self, rhs: Complex) -> Complex {
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let den = rhs.re + r * rhs.im;
            Complex { re: (self.re + self.im * r) / den, im: (self.im - self.re * r) / den }
        } else {
            let r = rhs.re / rhs.im;
            let den = rhs.im + r * rhs.re;
            Complex { re: (self.re * r + self.im) / den, im: (self.im * r - self.re) / den }
        }
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Div<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        Complex::from_real(self) / rhs
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert!(close(a / b, Complex::new(-0.2, 0.4), 1e-15));
    }

    #[test]
    fn mixed_scalar_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        assert_eq!(a + 1.0, Complex::new(2.0, 2.0));
        assert_eq!(1.0 + a, Complex::new(2.0, 2.0));
        assert_eq!(a - 1.0, Complex::new(0.0, 2.0));
        assert_eq!(1.0 - a, Complex::new(0.0, -2.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(2.0 * a, Complex::new(2.0, 4.0));
        assert_eq!(a / 2.0, Complex::new(0.5, 1.0));
        assert!(close(2.0 / Complex::new(0.0, 2.0), Complex::new(0.0, -1.0), 1e-15));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex::new(0.3, -1.7);
        let b = Complex::new(-2.5, 0.9);
        assert!(close((a * b) / b, a, 1e-14));
        assert!(close(a * a.recip(), Complex::ONE, 1e-14));
    }

    #[test]
    fn division_by_tiny_component_is_stable() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(1e-300, 1.0);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q * b, a, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (0.0, 2.0), (3.0, -4.0), (-1.0, -1.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt failed for {z}");
            assert!(s.re >= 0.0, "principal branch should have non-negative real part");
        }
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 1.1);
        assert!((z.abs() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 1.1).abs() < 1e-14);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(0.9, 0.3);
        let mut expected = Complex::ONE;
        for _ in 0..7 {
            expected *= z;
        }
        assert!(close(z.powi(7), expected, 1e-13));
        assert_eq!(z.powi(0), Complex::ONE);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn approx_real_detection() {
        assert!(Complex::new(5.0, 1e-12).is_approx_real(1e-9));
        assert!(!Complex::new(5.0, 0.1).is_approx_real(1e-9));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (1..=4).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert_eq!(total, Complex::new(10.0, -10.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
