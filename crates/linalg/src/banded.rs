//! Banded real matrices: packed storage, banded gemm/matvec, and banded LU.
//!
//! The QBD generator blocks of the Palmer–Mitrani model are narrow bands — the
//! local transition matrix couples mode `(n_op, n_up)` only to neighbours, so in
//! the lexicographic mode order every nonzero sits within `N + 1` diagonals of
//! the main one, and `B = λI` / the departure matrix `C` are diagonal.  Dense
//! kernels already *skip* those zeros element-wise; this module stops paying for
//! them at all by storing only the band and factoring only inside it.
//!
//! # Storage
//!
//! [`BandedMatrix`] packs an `n × n` matrix with `kl` subdiagonals and `ku`
//! superdiagonals row-major into `n` rows of width `kl + ku + 1`: element
//! `(i, j)` lives at `data[i·w + (j − i + kl)]`, so the main diagonal sits at
//! column offset `kl` of every packed row.  Out-of-band slots at the edges stay
//! exactly `+0.0` and are never read by the kernels.
//!
//! # Bit-identity with the dense kernels
//!
//! Every kernel here performs, per output element, the identical sequence of
//! floating-point operations the dense counterpart performs on the same
//! operand with its zeros materialised — ascending-`k` accumulation in
//! [`BandedMatrix::gemm_into`] (the dense tiling never reorders a single
//! element's terms), and the textbook right-looking elimination in
//! [`BandedLu`] (the dense blocked LU is bit-identical to the unblocked one by
//! construction).  The one structural difference is pivoting bookkeeping: the
//! dense factorisation swaps whole rows eagerly, while the banded one uses the
//! LAPACK `gbtrf` arrangement — only the `U`-parts of rows are exchanged and
//! multipliers stay in the slot where they were created, with the row
//! interchanges replayed *during* the solves.  Replaying the interchanges in
//! elimination order hands every logical row exactly the multiplier sequence
//! the dense solve applies to it, in the same ascending column order, so
//! factors, solves and determinants agree with the dense path to the last bit
//! (pinned by the in-module tests and the `properties` proptest suite).
//!
//! Caveat: the dense path also touches below-band entries whose multipliers are
//! exact zeros (`0.0 / pivot`), contributing `x − (±0·y)` no-ops.  Those no-ops
//! can flip the sign of an *exactly zero* intermediate (`-0.0 − (-0.0) = +0.0`);
//! bit-identity therefore assumes right-hand sides free of `-0.0`, which holds
//! for every probability-vector and generator-block RHS the solvers produce.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::workspace::Workspace;
use crate::Result;

/// Relative threshold below which a pivot is considered zero (same constant as
/// the dense [`LuDecomposition`](crate::LuDecomposition)).
const PIVOT_EPS: f64 = 1e-300;

/// A real `n × n` matrix with `kl` subdiagonals and `ku` superdiagonals in
/// packed row-major band storage.
///
/// Construction is cheap (`O(n·(kl + ku + 1))` storage) and the kernels —
/// [`matvec_into`](Self::matvec_into), [`gemm_into`](Self::gemm_into), and the
/// [`BandedLu`] factorisation — cost `O(n·w)` / `O(n·w·m)` / `O(n·w²)` instead
/// of their dense `O(n²)` / `O(n²·m)` / `O(n³)` counterparts, while producing
/// bit-identical results on the same nonzero pattern (see the module docs).
///
/// # Example
///
/// ```
/// use urs_linalg::{BandedMatrix, Matrix};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Tridiagonal 4×4: 2 on the diagonal, -1 on the off-diagonals.
/// let a = BandedMatrix::from_fn(4, 1, 1, |i, j| {
///     if i == j { 2.0 } else { -1.0 }
/// });
/// let mut y = [0.0; 4];
/// a.matvec_into(&[1.0, 1.0, 1.0, 1.0], &mut y)?;
/// assert_eq!(y, [1.0, 0.0, 0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Packed rows of width `kl + ku + 1`; element `(i, j)` at
    /// `data[i * width + (j + kl - i)]`.
    data: Vec<f64>,
}

impl BandedMatrix {
    /// Creates an `n × n` banded matrix of zeros with the given bandwidths
    /// (clamped to `n.saturating_sub(1)`).
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let cap = n.saturating_sub(1);
        let (kl, ku) = (kl.min(cap), ku.min(cap));
        BandedMatrix { n, kl, ku, data: vec![0.0; n * (kl + ku + 1)] }
    }

    /// Creates a banded matrix by evaluating `f(i, j)` at every in-band
    /// position; out-of-band elements are zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(
        n: usize,
        kl: usize,
        ku: usize,
        mut f: F,
    ) -> Self {
        let mut m = Self::zeros(n, kl, ku);
        let (kl, ku, w) = (m.kl, m.ku, m.width());
        for i in 0..n {
            for j in i.saturating_sub(kl)..(i + ku + 1).min(n) {
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                m.data[i * w + (j + kl - i)] = f(i, j);
            }
        }
        m
    }

    /// Packs a dense matrix into band storage with the given bandwidths.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::InvalidInput`] if any element outside the stated band is
    /// nonzero — the caller's bandwidth claim must be exact so the packed and
    /// dense operands describe the same matrix.
    pub fn from_dense(a: &Matrix, kl: usize, ku: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let cap = n.saturating_sub(1);
        let (kl, ku) = (kl.min(cap), ku.min(cap));
        for i in 0..n {
            for j in 0..n {
                // urs-analyze: allow(float_cmp, reason = "exact-zero structure test: packing must reject any nonzero outside the claimed band")
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                if (j + kl < i || j > i + ku) && a[(i, j)] != 0.0 {
                    return Err(LinalgError::InvalidInput(format!(
                        "element ({i},{j}) is outside the claimed band (kl={kl}, ku={ku}) but nonzero"
                    )));
                }
            }
        }
        // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
        Ok(Self::from_fn(n, kl, ku, |i, j| a[(i, j)]))
    }

    /// Measures the exact lower and upper bandwidths of a square dense matrix:
    /// the smallest `(kl, ku)` such that every nonzero of `a` satisfies
    /// `i − kl ≤ j ≤ i + ku`.  Returns `(0, 0)` for diagonal (and empty)
    /// matrices.
    pub fn bandwidths_of(a: &Matrix) -> (usize, usize) {
        let n = a.rows().min(a.cols());
        let (mut kl, mut ku) = (0usize, 0usize);
        for i in 0..n {
            for j in 0..n {
                // urs-analyze: allow(float_cmp, reason = "exact-zero structure probe; any nonzero, however small, widens the band")
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                if a[(i, j)] != 0.0 {
                    if j < i {
                        kl = kl.max(i - j);
                    } else {
                        ku = ku.max(j - i);
                    }
                }
            }
        }
        (kl, ku)
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of subdiagonals.
    #[inline]
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Number of superdiagonals.
    #[inline]
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    /// Packed row width `kl + ku + 1`.
    #[inline]
    fn width(&self) -> usize {
        self.kl + self.ku + 1
    }

    /// Element access; out-of-band positions read as `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds for dim {}", self.n);
        if j + self.kl < i || j > i + self.ku {
            0.0
        } else {
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            self.data[i * self.width() + (j + self.kl - i)]
        }
    }

    /// Writes an in-band element.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or outside the band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds for dim {}", self.n);
        assert!(
            j + self.kl >= i && j <= i + self.ku,
            "index ({i},{j}) outside band (kl={}, ku={})",
            self.kl,
            self.ku
        );
        let w = self.width();
        // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
        self.data[i * w + (j + self.kl - i)] = value;
    }

    /// Expands to a dense matrix (for tests, diagnostics and dense fallbacks).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Maximum absolute value of any in-band element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Banded matrix–vector product `out = self · v`, allocation-free.
    ///
    /// Per output row the in-band terms accumulate in ascending column order —
    /// the same order the dense [`Matrix::matvec`] uses, with the out-of-band
    /// `0·vⱼ` no-ops elided (see the module docs for the `-0.0` caveat).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v` or `out` has the
    /// wrong length.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.n;
        if v.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded matrix-vector product",
                left: (n, n),
                right: (v.len().max(out.len()), 1),
            });
        }
        let w = self.width();
        // urs-analyze: begin(no_alloc)
        for (i, oi) in out.iter_mut().enumerate() {
            let j0 = i.saturating_sub(self.kl);
            let j1 = (i + self.ku + 1).min(n);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let row = &self.data[i * w + (j0 + self.kl - i)..i * w + (j1 - 1 + self.kl - i) + 1];
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            *oi = row.iter().zip(&v[j0..j1]).map(|(a, b)| a * b).sum();
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Banded multiply-accumulate `c ← alpha·self·b + beta·c` with a dense
    /// right operand and output, allocation-free.
    ///
    /// Per output element the `k` terms accumulate in ascending order with the
    /// same `alpha·a == 0.0` skip as the dense [`Matrix::gemm`], so on the same
    /// nonzero pattern the results agree bit for bit; the band merely bounds
    /// which `k` are visited at all.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] unless
    /// `c.shape() == (self.dim(), b.cols())` and `b.rows() == self.dim()`.
    pub fn gemm_into(&self, alpha: f64, b: &Matrix, beta: f64, c: &mut Matrix) -> Result<()> {
        let n = self.n;
        if b.rows() != n || c.rows() != n || c.cols() != b.cols() {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded multiply-accumulate (gemm)",
                left: (n, n),
                right: b.shape(),
            });
        }
        let m = b.cols();
        let w = self.width();
        let bd = b.as_slice();
        let cd = c.as_mut_slice();
        // urs-analyze: begin(no_alloc)
        // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
        if beta == 0.0 {
            cd.fill(0.0);
        // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
        } else if beta != 1.0 {
            for x in cd.iter_mut() {
                *x *= beta;
            }
        }
        // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
        if alpha == 0.0 || m == 0 {
            return Ok(());
        }
        for i in 0..n {
            let j0 = i.saturating_sub(self.kl);
            let j1 = (i + self.ku + 1).min(n);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let a_row = &self.data[i * w + (j0 + self.kl - i)..i * w + (j1 - 1 + self.kl - i) + 1];
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let c_row = &mut cd[i * m..(i + 1) * m];
            for (offset, &av) in a_row.iter().enumerate() {
                let aip = alpha * av;
                // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
                if aip == 0.0 {
                    continue;
                }
                let p = j0 + offset;
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                let b_row = &bd[p * m..(p + 1) * m];
                for (x, &bv) in c_row.iter_mut().zip(b_row) {
                    *x += aip * bv;
                }
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Banded LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BandedLu::new`].
    pub fn lu(&self) -> Result<BandedLu> {
        BandedLu::new(self)
    }
}

/// A banded LU factorisation `P·A = L·U` with partial pivoting, stored packed.
///
/// Pivoting widens `U` by up to `kl` extra superdiagonals (the classic fill of
/// `gbtrf`), so the working rows have width `kl + min(kl + ku, n − 1) + 1`; the
/// factor never touches — and never allocates — anything outside that window.
/// Multipliers are stored in the packed slot where they were created (rows are
/// *not* L-swapped) and the recorded interchanges are replayed inside the
/// solves, which makes every solve bit-identical to the dense
/// [`LuDecomposition`](crate::LuDecomposition) on the same matrix (module docs
/// give the argument and the `-0.0` caveat).
///
/// # Example
///
/// ```
/// use urs_linalg::BandedMatrix;
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// let a = BandedMatrix::from_fn(3, 1, 1, |i, j| if i == j { 2.0 } else { 1.0 });
/// let lu = a.lu()?;
/// let mut x = [0.0; 3];
/// lu.solve_into(&[3.0, 4.0, 3.0], &mut x)?;
/// assert!(x.iter().all(|v| (v - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BandedLu {
    n: usize,
    /// Subdiagonals of `A` (multiplier window height).
    kl: usize,
    /// Superdiagonals of `U` including pivoting fill: `min(kl + ku, n − 1)`.
    bw: usize,
    /// Packed working rows of width `kl + bw + 1`, diagonal at offset `kl`.
    data: Vec<f64>,
    /// `piv[k]` is the row exchanged with row `k` at elimination step `k`.
    piv: Vec<usize>,
    perm_sign: f64,
    singular_at: Option<usize>,
}

impl BandedLu {
    /// Factorises a banded matrix, rejecting singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] for empty or non-finite input and
    /// [`LinalgError::Singular`] when a pivot underflows — with the same pivot
    /// index the dense factorisation reports.
    pub fn new(a: &BandedMatrix) -> Result<Self> {
        let lu = Self::factor_allow_singular(a, None)?;
        if let Some(pivot) = lu.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        Ok(lu)
    }

    /// [`new`](Self::new) with the working storage borrowed from `ws`; return
    /// it with [`recycle`](Self::recycle) so a refactorising hot loop performs
    /// no steady-state allocation (the pivot vector is retained inside the
    /// returned value and recycled with the storage).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn new_pooled(a: &BandedMatrix, ws: &mut Workspace) -> Result<Self> {
        let lu = Self::factor_allow_singular(a, Some(ws))?;
        if let Some(pivot) = lu.singular_at {
            let pivot_err = pivot;
            lu.recycle(ws);
            return Err(LinalgError::Singular { pivot: pivot_err });
        }
        Ok(lu)
    }

    /// Factorises a banded matrix, tolerating exactly singular input (the
    /// decomposition still yields [`determinant`](Self::determinant) `= 0`;
    /// solves return [`LinalgError::Singular`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] for empty or non-finite input.
    pub fn new_allow_singular(a: &BandedMatrix) -> Result<Self> {
        Self::factor_allow_singular(a, None)
    }

    /// Returns the working storage to `ws` for reuse.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.release_real_buffer(self.data);
    }

    fn factor_allow_singular(a: &BandedMatrix, ws: Option<&mut Workspace>) -> Result<Self> {
        let n = a.n;
        if n == 0 {
            return Err(LinalgError::InvalidInput("matrix must be non-empty".into()));
        }
        if !a.data.iter().all(|x| x.is_finite()) {
            return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
        }
        let kl = a.kl;
        let bw = (a.kl + a.ku).min(n - 1);
        let w = kl + bw + 1;
        let aw = a.width();
        let mut data = match ws {
            Some(ws) => ws.real_buffer(n * w),
            None => vec![0.0; n * w],
        };
        // Copy the band into the widened working rows; the extra `bw − ku`
        // fill columns start as exact zeros, as they are in the dense factor.
        for i in 0..n {
            let j0 = i.saturating_sub(a.kl);
            let j1 = (i + a.ku + 1).min(n);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            data[i * w + (j0 + kl - i)..i * w + (j1 - 1 + kl - i) + 1].copy_from_slice(
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                &a.data[i * aw + (j0 + a.kl - i)..i * aw + (j1 - 1 + a.kl - i) + 1],
            );
        }
        let mut piv = Vec::with_capacity(n);
        let mut perm_sign = 1.0;
        let mut singular_at = None;
        let d = data.as_mut_slice();

        // Unblocked right-looking elimination (the dense blocked kernel is
        // bit-identical to this order by construction); only rows k..k+kl can
        // hold nonzeros in column k, so the pivot search and the update stop
        // at the band edge.
        // urs-analyze: begin(no_alloc)
        for k in 0..n {
            let bl = kl.min(n - 1 - k);
            let u_extent = bw.min(n - 1 - k);
            // Pivot search down column k: the candidate in row k+t sits at
            // packed offset kl − t.  Strict `>` matches the dense search, and
            // the dense candidates below the band are exact zeros which a
            // strict `>` against a non-negative running max never selects.
            let mut pivot_t = 0usize;
            // urs-analyze: allow(slice_index, reason = "row k, diagonal slot kl: in range because every working row has width kl + bw + 1")
            let mut pivot_val = d[k * w + kl].abs();
            for t in 1..=bl {
                // urs-analyze: allow(slice_index, reason = "row k+t ≤ n−1 and column offset kl − t ≥ 0 by the loop bound bl = min(kl, n−1−k)")
                let v = d[(k + t) * w + kl - t].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_t = t;
                }
            }
            piv.push(k + pivot_t);
            if pivot_t != 0 {
                // Exchange only the U-parts (columns k..=k+u_extent); the
                // multipliers already stored to the left stay in place and the
                // solves replay the interchange instead.
                let t = pivot_t;
                // urs-analyze: allow(slice_index, reason = "rows k and k+t are distinct and in range; split at the later row start")
                let (head, tail) = d.split_at_mut((k + t) * w);
                // urs-analyze: allow(slice_index, reason = "U-part of row k: offsets kl..=kl+u_extent fit the working width kl + bw + 1")
                let row_k = &mut head[k * w + kl..k * w + kl + u_extent + 1];
                // urs-analyze: allow(slice_index, reason = "U-part of row k+t: offsets kl−t..=kl−t+u_extent; kl ≥ t and u_extent ≤ bw keep both ends in the row")
                let row_t = &mut tail[kl - t..kl - t + u_extent + 1];
                row_k.swap_with_slice(row_t);
                perm_sign = -perm_sign;
            }
            // urs-analyze: allow(slice_index, reason = "diagonal slot of row k, in range as above")
            let pivot = d[k * w + kl];
            if pivot.abs() < PIVOT_EPS {
                if singular_at.is_none() {
                    singular_at = Some(k);
                }
                continue;
            }
            if bl == 0 {
                continue;
            }
            // Multipliers and the rank-1 update of the rows below, each
            // against the pivot row's U-part — identical per-row arithmetic to
            // the dense elimination, restricted to the band.
            // urs-analyze: allow(slice_index, reason = "split between row k and row k+1; both sides non-empty because bl ≥ 1")
            let (upper, lower) = d.split_at_mut((k + 1) * w);
            // urs-analyze: allow(slice_index, reason = "pivot row U-part beyond the diagonal: offsets kl+1..=kl+u_extent within the working width")
            let u_row = &upper[k * w + kl + 1..k * w + kl + u_extent + 1];
            for (t, row) in lower.chunks_exact_mut(w).take(bl).enumerate() {
                let off = kl - (t + 1);
                // urs-analyze: allow(slice_index, reason = "column-k slot of row k+t+1 at offset kl−(t+1) ≥ 0 since t+1 ≤ bl ≤ kl")
                let factor = row[off] / pivot;
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                row[off] = factor;
                // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
                if factor != 0.0 {
                    // urs-analyze: allow(slice_index, reason = "update window off+1..=off+u_extent stays within the row: off + u_extent ≤ kl + bw")
                    for (x, &u) in row[off + 1..off + u_extent + 1].iter_mut().zip(u_row) {
                        *x -= factor * u;
                    }
                }
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(BandedLu { n, kl, bw, data, piv, perm_sign, singular_at })
    }

    /// Dimension of the factorised matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix was found to be singular.
    pub fn is_singular(&self) -> bool {
        self.singular_at.is_some()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        if self.singular_at.is_some() {
            return 0.0;
        }
        let w = self.kl + self.bw + 1;
        let mut det = self.perm_sign;
        for i in 0..self.n {
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            det *= self.data[i * w + self.kl];
        }
        det
    }

    fn ensure_regular(&self) -> Result<()> {
        if let Some(pivot) = self.singular_at {
            return Err(LinalgError::Singular { pivot });
        }
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve_into`](Self::solve_into).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation).
    ///
    /// The recorded interchanges are replayed in elimination order, so each
    /// logical row receives exactly the multiplier subtractions — in the same
    /// ascending column order — that the dense solve applies after its
    /// up-front permutation; the back-substitution then runs row-oriented like
    /// the dense one, restricted to the `U` band.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular, or
    /// [`LinalgError::DimensionMismatch`] on wrong lengths.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        self.ensure_regular()?;
        let n = self.n;
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded LU solve",
                left: (n, n),
                right: (b.len().max(x.len()), 1),
            });
        }
        let w = self.kl + self.bw + 1;
        let d = &self.data;
        x.copy_from_slice(b);
        // urs-analyze: begin(no_alloc)
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                x.swap(k, p);
            }
            let bl = self.kl.min(n - 1 - k);
            // urs-analyze: allow(slice_index, reason = "x[k] read after the interchange; k < n by the loop bound")
            let xk = x[k];
            for t in 1..=bl {
                // urs-analyze: allow(slice_index, reason = "multiplier of row k+t for column k at packed offset kl − t, in range as in the factorisation")
                let l = d[(k + t) * w + self.kl - t];
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                x[k + t] -= l * xk;
            }
        }
        for i in (0..n).rev() {
            let u_extent = self.bw.min(n - 1 - i);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let row = &d[i * w + self.kl..i * w + self.kl + u_extent + 1];
            // urs-analyze: allow(slice_index, reason = "x[i] with i < n; the zip below bounds the U traversal to u_extent terms")
            let mut sum = x[i];
            // urs-analyze: allow(slice_index, reason = "x[i+1..i+1+u_extent] is in range because i + u_extent ≤ n − 1")
            for (u, &xj) in row[1..].iter().zip(x[i + 1..].iter()) {
                sum -= u * xj;
            }
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            x[i] = sum / row[0];
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Solves `A X = B` into a caller-provided matrix (no allocation) with
    /// whole-row operations — the banded twin of the dense
    /// [`solve_matrix_into`](crate::LuDecomposition::solve_matrix_into),
    /// including its `≠ 0` skips, with interchanges replayed in elimination
    /// order.
    ///
    /// # Errors
    ///
    /// Same as [`solve_into`](Self::solve_into), plus shape checks on `B` and
    /// `out`.
    pub fn solve_matrix_into(&self, b: &Matrix, out: &mut Matrix) -> Result<()> {
        self.ensure_regular()?;
        let n = self.n;
        if b.rows() != n || out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded LU matrix solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let m = b.cols();
        out.copy_from(b)?;
        let w = self.kl + self.bw + 1;
        let d = &self.data;
        let x = out.as_mut_slice();
        // urs-analyze: begin(no_alloc)
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                // urs-analyze: allow(slice_index, reason = "rows k < p < n of the RHS; disjoint slices via split at p·m")
                let (head, tail) = x.split_at_mut(p * m);
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                head[k * m..(k + 1) * m].swap_with_slice(&mut tail[..m]);
            }
            let bl = self.kl.min(n - 1 - k);
            if bl == 0 {
                continue;
            }
            // urs-analyze: allow(slice_index, reason = "split between RHS rows k and k+1, both in range since bl ≥ 1")
            let (upper, lower) = x.split_at_mut((k + 1) * m);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let xk = &upper[k * m..];
            for (t, xrow) in lower.chunks_exact_mut(m).take(bl).enumerate() {
                // urs-analyze: allow(slice_index, reason = "multiplier slot of row k+t+1 at offset kl − (t+1), in range as in the factorisation")
                let l = d[(k + t + 1) * w + self.kl - (t + 1)];
                // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
                if l != 0.0 {
                    for (xt, &v) in xrow.iter_mut().zip(xk) {
                        *xt -= l * v;
                    }
                }
            }
        }
        for i in (0..n).rev() {
            let u_extent = self.bw.min(n - 1 - i);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let row = &d[i * w + self.kl..i * w + self.kl + u_extent + 1];
            // urs-analyze: allow(slice_index, reason = "split between RHS rows i and i+1; i < n by the loop bound")
            let (head, tail) = x.split_at_mut((i + 1) * m);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let xi = &mut head[i * m..];
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            for (j, u) in row[1..].iter().enumerate() {
                // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip path; bitwise test is part of the bit-identity contract")
                if *u != 0.0 {
                    // urs-analyze: allow(slice_index, reason = "RHS row i+1+j with j < u_extent, hence i+1+j ≤ n−1")
                    let xj = &tail[j * m..(j + 1) * m];
                    for (t, &v) in xi.iter_mut().zip(xj) {
                        *t -= u * v;
                    }
                }
            }
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let inv = row[0];
            for t in xi.iter_mut() {
                *t /= inv;
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuDecomposition;

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }
    }

    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix {
        let mut next = rng(seed);
        BandedMatrix::from_fn(n, kl, ku, |i, j| {
            let v = next();
            if i == j {
                v + 4.0
            } else {
                v
            }
        })
    }

    #[test]
    fn packing_round_trips_and_rejects_out_of_band() {
        let a = random_banded(7, 2, 3, 1);
        let dense = a.to_dense();
        let packed = BandedMatrix::from_dense(&dense, 2, 3).unwrap();
        assert_eq!(packed, a);
        assert_eq!(BandedMatrix::bandwidths_of(&dense), (2, 3));
        let mut bad = dense.clone();
        bad[(6, 0)] = 1.0;
        assert!(matches!(BandedMatrix::from_dense(&bad, 2, 3), Err(LinalgError::InvalidInput(_))));
    }

    #[test]
    fn matvec_and_gemm_match_dense_bitwise() {
        for &(n, kl, ku) in &[(1usize, 0usize, 0usize), (5, 0, 2), (6, 3, 0), (9, 2, 2), (8, 7, 7)]
        {
            let a = random_banded(n, kl, ku, 7 + n as u64);
            let dense = a.to_dense();
            let mut next = rng(99);
            let v: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut y = vec![0.0; n];
            a.matvec_into(&v, &mut y).unwrap();
            let yd = dense.matvec(&v).unwrap();
            for (b, d) in y.iter().zip(&yd) {
                assert_eq!(b.to_bits(), d.to_bits());
            }
            let b = Matrix::from_fn(n, 4, |_, _| next());
            let mut c = Matrix::from_fn(n, 4, |_, _| next());
            let mut cd = c.clone();
            a.gemm_into(1.5, &b, 0.5, &mut c).unwrap();
            cd.gemm(1.5, &dense, &b, 0.5).unwrap();
            for (x, y) in c.as_slice().iter().zip(cd.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn factor_and_solves_match_dense_bitwise() {
        for &(n, kl, ku) in
            &[(1usize, 0usize, 0usize), (4, 1, 1), (7, 0, 3), (7, 3, 0), (12, 2, 4), (10, 9, 9)]
        {
            let a = random_banded(n, kl, ku, 31 + 3 * n as u64 + ku as u64);
            let dense = a.to_dense();
            let blu = a.lu().unwrap();
            let dlu = LuDecomposition::new(&dense).unwrap();
            assert_eq!(blu.determinant().to_bits(), dlu.determinant().to_bits());
            let mut next = rng(5);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut xb = vec![0.0; n];
            let mut xd = vec![0.0; n];
            blu.solve_into(&b, &mut xb).unwrap();
            dlu.solve_into(&b, &mut xd).unwrap();
            for (p, q) in xb.iter().zip(&xd) {
                assert_eq!(p.to_bits(), q.to_bits(), "n={n} kl={kl} ku={ku}");
            }
            let bm = Matrix::from_fn(n, 3, |_, _| next());
            let mut ob = Matrix::zeros(n, 3);
            let mut od = Matrix::zeros(n, 3);
            blu.solve_matrix_into(&bm, &mut ob).unwrap();
            dlu.solve_matrix_into(&bm, &mut od).unwrap();
            for (p, q) in ob.as_slice().iter().zip(od.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits(), "n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn pivoting_is_exercised_and_still_matches_dense() {
        // Leading entry much smaller than the subdiagonal forces interchanges.
        let n = 8;
        let a = BandedMatrix::from_fn(n, 2, 1, |i, j| {
            if i == j {
                1e-3
            } else {
                1.0 + (i * 7 + j) as f64 * 0.1
            }
        });
        let dense = a.to_dense();
        let blu = a.lu().unwrap();
        let dlu = LuDecomposition::new(&dense).unwrap();
        assert_eq!(blu.determinant().to_bits(), dlu.determinant().to_bits());
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.3).collect();
        let xb = blu.solve(&b).unwrap();
        let xd = dlu.solve(&b).unwrap();
        for (p, q) in xb.iter().zip(&xd) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn singular_semantics_match_dense() {
        // Two proportional rows inside the band → singular at the same pivot.
        let mut a = BandedMatrix::zeros(3, 1, 1);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        a.set(2, 2, 1.0);
        let dense = a.to_dense();
        let db = BandedLu::new(&a).unwrap_err();
        let dd = LuDecomposition::new(&dense).unwrap_err();
        match (db, dd) {
            (LinalgError::Singular { pivot: p }, LinalgError::Singular { pivot: q }) => {
                assert_eq!(p, q)
            }
            other => panic!("expected Singular twins, got {other:?}"),
        }
        let lu = BandedLu::new_allow_singular(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert!(lu.solve(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn pooled_factorisation_recycles_storage() {
        let mut ws = Workspace::new();
        let a = random_banded(6, 1, 2, 11);
        let lu = BandedLu::new_pooled(&a, &mut ws).unwrap();
        let x = lu.solve(&[1.0; 6]).unwrap();
        let direct = a.lu().unwrap().solve(&[1.0; 6]).unwrap();
        for (p, q) in x.iter().zip(&direct) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        lu.recycle(&mut ws);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn dimension_checks_reject_mismatches() {
        let a = random_banded(4, 1, 1, 3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&[1.0; 3]).is_err());
        let mut y = [0.0; 3];
        assert!(a.matvec_into(&[1.0; 4], &mut y).is_err());
        assert!(BandedLu::new(&BandedMatrix::zeros(0, 0, 0)).is_err());
    }
}
