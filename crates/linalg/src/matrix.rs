//! Dense, row-major real matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::parallel::ThreadPool;
use crate::Result;

/// Work (in multiply-adds) below which a parallel kernel call is not worth the
/// scoped-thread spawn and falls back to the serial path.  Shared by the real and
/// complex gemm and by the right-solve row fan-outs.
pub(crate) const MIN_PAR_WORK: usize = 32 * 1024;

/// Rows per parallel band when partitioning `m` output rows of an `m×k · k×n`
/// product (or a row-independent solve of equivalent cost) across `threads`
/// workers.  Returns `m` — a single band, i.e. the serial path — when the pool is
/// serial or the total work is too small to amortise thread spawning.  Four bands
/// per worker keep the load balanced when row costs vary (zero-skipping makes them
/// vary); the partition never affects results, only wall time, because each output
/// element's accumulation stays entirely within one band.
pub(crate) fn par_band_rows(m: usize, k: usize, n: usize, threads: usize) -> usize {
    if threads <= 1 || m < 2 || m.saturating_mul(k.max(1)).saturating_mul(n.max(1)) < MIN_PAR_WORK {
        return m.max(1);
    }
    m.div_ceil(4 * threads).max(1)
}

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally simple: it owns a `Vec<f64>` of length `rows * cols` and
/// provides the constructors, element access, and arithmetic that the queueing solvers
/// need.  All operations that can fail (shape mismatches, singular systems) return a
/// [`LinalgError`](crate::LinalgError) instead of panicking, with the exception of the
/// indexing operators which follow the standard library convention of panicking on
/// out-of-bounds access.
///
/// # Example
///
/// ```
/// use urs_linalg::Matrix;
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// assert!((a.determinant()? - (-2.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        // urs-analyze: allow(no_panic, reason = "usize overflow of rows*cols is documented under # Panics; a Result here would infect every kernel signature")
        Matrix { rows, cols, data: vec![0.0; rows.checked_mul(cols).expect("matrix too large")] }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from a slice of diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the rows are empty or have differing
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidInput("matrix must have at least one element".into()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::InvalidInput(format!(
                    "ragged rows: expected {} columns, found {}",
                    cols,
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput(format!(
                "expected {} elements for a {rows}x{cols} matrix, found {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data buffer.
    ///
    /// Together with [`from_vec`](Self::from_vec) this lets a
    /// [`Workspace`](crate::Workspace) recycle matrix storage across hot-loop
    /// iterations without reallocating.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access returning `None` when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Borrow a row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index {row} out of bounds ({} rows)", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copy a column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column index {col} out of bounds ({} columns)", self.cols);
        (0..self.rows).map(|i| self[(i, col)]).collect()
    }

    /// Returns the main diagonal as a vector (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Matrix product `self * rhs`.
    ///
    /// Thin allocating wrapper over the in-place [`gemm`](Self::gemm) kernel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        out.gemm(1.0, self, rhs, 0.0)?;
        Ok(out)
    }

    /// General multiply-accumulate `self ← alpha·a·b + beta·self`, in place.
    ///
    /// This is the workhorse kernel of the workspace: it allocates nothing, skips
    /// zero elements of `a` (the QBD generator blocks are sparse bands), and tiles
    /// the `k` and `j` loops so a slab of `b` stays cache-resident while every row
    /// of `a` streams past it.  `beta == 0.0` overwrites `self` outright (no
    /// `0 · NaN` propagation); accumulation order over `k` is ascending regardless
    /// of the tiling, so results do not depend on the block sizes.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] unless
    /// `self.shape() == (a.rows(), b.cols())` and `a.cols() == b.rows()`.
    pub fn gemm(&mut self, alpha: f64, a: &Matrix, b: &Matrix, beta: f64) -> Result<()> {
        self.gemm_with(alpha, a, b, beta, &ThreadPool::serial())
    }

    /// [`gemm`](Self::gemm) with the output rows partitioned across the workers of
    /// `pool`, bit-identical to the serial kernel at any thread count.
    ///
    /// Each worker owns a disjoint band of output rows and runs the same `k`/`j`
    /// tiling over it, so every output element accumulates its `k` terms in the same
    /// ascending order as the serial kernel — the partition changes wall time, never
    /// bits.  Small products (or a serial pool) take the serial path outright.
    ///
    /// # Errors
    ///
    /// Same as [`gemm`](Self::gemm), plus [`LinalgError::WorkerPanic`] if a worker
    /// panicked.
    pub fn gemm_with(
        &mut self,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        pool: &ThreadPool,
    ) -> Result<()> {
        if a.cols != b.rows || self.rows != a.rows || self.cols != b.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix multiply-accumulate (gemm)",
                left: a.shape(),
                right: b.shape(),
            });
        }
        let (m, k, n) = (a.rows, a.cols, b.cols);
        let band_rows = par_band_rows(m, k, n, pool.threads());
        if band_rows >= m {
            gemm_band(&mut self.data, &a.data, &b.data, alpha, beta, k, n);
            return Ok(());
        }
        pool.par_chunks_mut(&mut self.data, band_rows * n, |band, c_rows| {
            let row0 = band * band_rows;
            let rows = c_rows.len() / n;
            gemm_band(c_rows, &a.data[row0 * k..(row0 + rows) * k], &b.data, alpha, beta, k, n);
        })?;
        Ok(())
    }

    /// Copies every element of `other` into `self` (shapes must match).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix copy",
                left: self.shape(),
                right: other.shape(),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// In-place scaled accumulation `self ← self + alpha·other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix scaled addition",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Scales column `j` by `diag[j]`, in place — the cheap form of right-multiplying
    /// by a diagonal matrix (`self ← self · diag(d)`), `O(n²)` instead of a dense
    /// `O(n³)` product.  The QBD departure matrix `C` and arrival matrix `B = λI` are
    /// both diagonal, so the solvers use this for every `X·C` product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `diag.len() != self.cols()`.
    pub fn scale_columns(&mut self, diag: &[f64]) -> Result<()> {
        if diag.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "column scaling by diagonal",
                left: self.shape(),
                right: (diag.len(), diag.len()),
            });
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &d) in row.iter_mut().zip(diag) {
                *x *= d;
            }
        }
        Ok(())
    }

    /// Matrix–vector product `self * v` (v as a column vector).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix-vector product",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Row-vector–matrix product `v * self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "vector-matrix product",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Sum of the diagonal elements.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Row sums, i.e. `self * 1`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Maximum absolute value of any element (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` when all elements of the two matrices differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input or
    /// [`LinalgError::Singular`] when a zero pivot is encountered.
    pub fn lu(&self) -> Result<LuDecomposition> {
        LuDecomposition::new(self)
    }

    /// Determinant via LU factorisation.
    ///
    /// Returns `0.0` for singular matrices rather than an error.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        match LuDecomposition::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Matrix inverse via LU factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Matrix> {
        self.lu()?.inverse()
    }

    /// Solves `self * x = b` for `x` (column-vector right-hand side).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::Singular`] or
    /// [`LinalgError::DimensionMismatch`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Solves `x * self = b` for the row vector `x` (i.e. `selfᵀ xᵀ = bᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::Singular`] or
    /// [`LinalgError::DimensionMismatch`].
    pub fn solve_left(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.transpose().solve(b)
    }
}

/// The tiled multiply-accumulate body of [`Matrix::gemm`] restricted to a band of
/// output rows: `c ← alpha·a·b + beta·c`, where `c` and `a` hold the same
/// `c.len() / n` consecutive rows of the output and left operand.
///
/// Tile sizes are chosen so a KB×JB slab of `b` (≤ 128 KiB) fits in L2 while the
/// accumulation order over `k` stays ascending (tiles are visited in order).  The
/// serial kernel is exactly this function applied to the full row range, so a banded
/// parallel run — which only re-partitions `i`, never the per-element `k` order —
/// reproduces it bit for bit.
// urs-analyze: begin(no_alloc)
fn gemm_band(c: &mut [f64], a: &[f64], b: &[f64], alpha: f64, beta: f64, k: usize, n: usize) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || n == 0 {
        return;
    }
    let m = c.len() / n;
    const KB: usize = 64;
    const JB: usize = 256;
    for kk in (0..k).step_by(KB) {
        let k_end = (kk + KB).min(k);
        for jj in (0..n).step_by(JB) {
            let j_end = (jj + JB).min(n);
            // Quads of output rows whose `a` panels are fully dense run the
            // fused four-row kernel, which reads each `b` row once for all four
            // accumulator rows; everything else takes the per-row panel kernel.
            // Each output row receives the identical ascending-`k` operation
            // sequence either way, so the grouping changes wall time, not bits.
            let mut i0 = 0;
            while i0 + 4 <= m {
                // urs-analyze: allow(slice_index, reason = "a panels for rows i0..i0+3 with i0+3 < m; window kk..k_end ≤ k")
                let t0 = &a[i0 * k + kk..i0 * k + k_end];
                // urs-analyze: allow(slice_index, reason = "a panel for row i0+1, in range as above")
                let t1 = &a[(i0 + 1) * k + kk..(i0 + 1) * k + k_end];
                // urs-analyze: allow(slice_index, reason = "a panel for row i0+2, in range as above")
                let t2 = &a[(i0 + 2) * k + kk..(i0 + 2) * k + k_end];
                // urs-analyze: allow(slice_index, reason = "a panel for row i0+3, in range as above")
                let t3 = &a[(i0 + 3) * k + kk..(i0 + 3) * k + k_end];
                // urs-analyze: allow(float_cmp, reason = "exact-zero scan choosing between the skipping and branch-free loops; both compute the same sum")
                let dense =
                    // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip branch; bitwise test is part of the bit-identity contract")
                    t0.iter().chain(t1).chain(t2).chain(t3).all(|&v| v != 0.0);
                if dense {
                    // urs-analyze: allow(slice_index, reason = "c rows i0..i0+3, in range since (i0+4)·n ≤ m·n = c.len()")
                    let block = &mut c[i0 * n..(i0 + 4) * n];
                    let (r0, rest) = block.split_at_mut(n);
                    let (r1, rest) = rest.split_at_mut(n);
                    let (r2, r3) = rest.split_at_mut(n);
                    gemm_rows4_panel(
                        [
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &mut r0[jj..j_end],
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &mut r1[jj..j_end],
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &mut r2[jj..j_end],
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &mut r3[jj..j_end],
                        ],
                        [t0, t1, t2, t3],
                        b,
                        alpha,
                        kk,
                        jj,
                        j_end,
                        n,
                    );
                } else {
                    for i in i0..i0 + 4 {
                        // urs-analyze: allow(slice_index, reason = "a panel and c row for i < m, windows bounded by k and n")
                        gemm_row_panel(
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &mut c[i * n + jj..i * n + j_end],
                            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                            &a[i * k + kk..i * k + k_end],
                            b,
                            alpha,
                            kk,
                            jj,
                            j_end,
                            n,
                        );
                    }
                }
                i0 += 4;
            }
            for i in i0..m {
                // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                let a_tile = &a[i * k + kk..i * k + k_end];
                // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
                let c_row = &mut c[i * n + jj..i * n + j_end];
                gemm_row_panel(c_row, a_tile, b, alpha, kk, jj, j_end, n);
            }
        }
    }
}

/// One output row of a `gemm` panel: accumulate `alpha·a_tile[t]·b_row(kk+t)`
/// over the column window `jj..j_end`, `t` ascending.
///
/// Crossover gate: one cheap scan decides whether this panel of `a` is fully
/// dense, in which case the inner loop runs branch-free (the zero-skip would
/// test and never fire — pure overhead on dense operands).  Either branch
/// performs the identical ascending-`k` accumulation over the same nonzero
/// terms, so the gate changes wall time, not bits.
#[allow(clippy::too_many_arguments)]
fn gemm_row_panel(
    c_row: &mut [f64],
    a_tile: &[f64],
    b: &[f64],
    alpha: f64,
    kk: usize,
    jj: usize,
    j_end: usize,
    n: usize,
) {
    // urs-analyze: allow(float_cmp, reason = "exact-zero scan choosing between the skipping and branch-free loops; both compute the same sum")
    if a_tile.iter().all(|&v| v != 0.0) {
        // Four k-steps per pass over the output row: each element still
        // receives the same multiplies and adds in the same ascending-`k`
        // order as four single sweeps would apply (no fused multiply-add, no
        // reassociation), so the bits are unchanged — only the `c`-row
        // load/store traffic drops to a quarter, which is what this loop is
        // bound by.
        let mut offset = 0;
        while offset + 4 <= a_tile.len() {
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let a0 = alpha * a_tile[offset];
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let a1 = alpha * a_tile[offset + 1];
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let a2 = alpha * a_tile[offset + 2];
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let a3 = alpha * a_tile[offset + 3];
            let p = kk + offset;
            // urs-analyze: allow(slice_index, reason = "rows p..p+3 of b with p+3 < k_end ≤ k; column window jj..j_end ≤ n")
            let b0 = &b[p * n + jj..p * n + j_end];
            // urs-analyze: allow(slice_index, reason = "row p+1 of b, in range as above")
            let b1 = &b[(p + 1) * n + jj..(p + 1) * n + j_end];
            // urs-analyze: allow(slice_index, reason = "row p+2 of b, in range as above")
            let b2 = &b[(p + 2) * n + jj..(p + 2) * n + j_end];
            // urs-analyze: allow(slice_index, reason = "row p+3 of b, in range as above")
            let b3 = &b[(p + 3) * n + jj..(p + 3) * n + j_end];
            for ((((c, &v0), &v1), &v2), &v3) in c_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                let mut t = *c;
                t += a0 * v0;
                t += a1 * v1;
                t += a2 * v2;
                t += a3 * v3;
                *c = t;
            }
            offset += 4;
        }
        for (tail, &av) in a_tile.iter().enumerate().skip(offset) {
            let aip = alpha * av;
            let p = kk + tail;
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let b_row = &b[p * n + jj..p * n + j_end];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aip * bv;
            }
        }
    } else {
        for (offset, &av) in a_tile.iter().enumerate() {
            let aip = alpha * av;
            // urs-analyze: allow(float_cmp, reason = "exact zero gates the zero-skip branch; bitwise test is part of the bit-identity contract")
            if aip == 0.0 {
                continue;
            }
            let p = kk + offset;
            // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
            let b_row = &b[p * n + jj..p * n + j_end];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aip * bv;
            }
        }
    }
}

/// Four output rows of a `gemm` panel advanced in lockstep, all panels known to
/// be fully dense: each pass loads rows `p..p+3` of `b` once and feeds all four
/// accumulator rows, so the `b` traffic drops to a quarter of four independent
/// row sweeps while every output row still receives exactly the multiplies and
/// adds of [`gemm_row_panel`]'s dense branch in the same ascending-`k` order —
/// rows never read each other, so the fusion changes wall time, not bits.
#[allow(clippy::too_many_arguments)]
fn gemm_rows4_panel(
    c_rows: [&mut [f64]; 4],
    a_tiles: [&[f64]; 4],
    b: &[f64],
    alpha: f64,
    kk: usize,
    jj: usize,
    j_end: usize,
    n: usize,
) {
    let [c0, c1, c2, c3] = c_rows;
    let [t0, t1, t2, t3] = a_tiles;
    let mut offset = 0;
    while offset + 4 <= t0.len() {
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a00 = alpha * t0[offset];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a01 = alpha * t0[offset + 1];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a02 = alpha * t0[offset + 2];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a03 = alpha * t0[offset + 3];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a10 = alpha * t1[offset];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a11 = alpha * t1[offset + 1];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a12 = alpha * t1[offset + 2];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a13 = alpha * t1[offset + 3];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a20 = alpha * t2[offset];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a21 = alpha * t2[offset + 1];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a22 = alpha * t2[offset + 2];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a23 = alpha * t2[offset + 3];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a30 = alpha * t3[offset];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a31 = alpha * t3[offset + 1];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a32 = alpha * t3[offset + 2];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a33 = alpha * t3[offset + 3];
        let p = kk + offset;
        // urs-analyze: allow(slice_index, reason = "rows p..p+3 of b with p+3 < k_end ≤ k; column window jj..j_end ≤ n")
        let b0 = &b[p * n + jj..p * n + j_end];
        // urs-analyze: allow(slice_index, reason = "row p+1 of b, in range as above")
        let b1 = &b[(p + 1) * n + jj..(p + 1) * n + j_end];
        // urs-analyze: allow(slice_index, reason = "row p+2 of b, in range as above")
        let b2 = &b[(p + 2) * n + jj..(p + 2) * n + j_end];
        // urs-analyze: allow(slice_index, reason = "row p+3 of b, in range as above")
        let b3 = &b[(p + 3) * n + jj..(p + 3) * n + j_end];
        for (((((((x0, x1), x2), x3), &v0), &v1), &v2), &v3) in c0
            .iter_mut()
            .zip(c1.iter_mut())
            .zip(c2.iter_mut())
            .zip(c3.iter_mut())
            .zip(b0)
            .zip(b1)
            .zip(b2)
            .zip(b3)
        {
            let mut t = *x0;
            t += a00 * v0;
            t += a01 * v1;
            t += a02 * v2;
            t += a03 * v3;
            *x0 = t;
            let mut t = *x1;
            t += a10 * v0;
            t += a11 * v1;
            t += a12 * v2;
            t += a13 * v3;
            *x1 = t;
            let mut t = *x2;
            t += a20 * v0;
            t += a21 * v1;
            t += a22 * v2;
            t += a23 * v3;
            *x2 = t;
            let mut t = *x3;
            t += a30 * v0;
            t += a31 * v1;
            t += a32 * v2;
            t += a33 * v3;
            *x3 = t;
        }
        offset += 4;
    }
    for tail in offset..t0.len() {
        let p = kk + tail;
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a0 = alpha * t0[tail];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a1 = alpha * t1[tail];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a2 = alpha * t2[tail];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let a3 = alpha * t3[tail];
        // urs-analyze: allow(slice_index, reason = "tile offsets bounded by the blocking loop limits; fused gemm hot loop")
        let b_row = &b[p * n + jj..p * n + j_end];
        for ((((x0, x1), x2), x3), &v) in
            c0.iter_mut().zip(c1.iter_mut()).zip(c2.iter_mut()).zip(c3.iter_mut()).zip(b_row)
        {
            *x0 += a0 * v;
            *x1 += a1 * v;
            *x2 += a2 * v;
            *x3 += a3 * v;
        }
    }
}
// urs-analyze: end(no_alloc)

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.5}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition requires equal shapes");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction requires equal shapes");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
        assert!(matches!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::InvalidInput(_)));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn identity_and_diagonal() {
        let id = Matrix::identity(3);
        assert_eq!(id.trace().unwrap(), 3.0);
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.determinant().unwrap(), 6.0);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0][..], &[0.0, 1.0][..], &[1.0, 1.0][..]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 5.0][..], &[10.0, 11.0][..]]).unwrap());
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = sample();
        let err = a.matmul(&a).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn row_sums_and_norms() {
        let a = sample();
        assert_eq!(a.row_sums(), vec![6.0, 15.0]);
        assert_eq!(a.max_abs(), 6.0);
        assert_eq!(a.inf_norm(), 15.0);
        assert!((a.frobenius_norm() - 91.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_operators() {
        let a = sample();
        let twice = &a + &a;
        assert_eq!(twice, a.scale(2.0));
        assert_eq!(&twice - &a, a);
        assert_eq!((&-(&a))[(0, 0)], -1.0);
        assert_eq!((&a * 3.0)[(1, 2)], 18.0);
    }

    #[test]
    fn solve_simple_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_left_matches_transpose_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.5, 3.0][..]]).unwrap();
        let b = [1.0, 2.0];
        let x = a.solve_left(&b).unwrap();
        // check x * a = b
        let prod = a.vecmat(&x).unwrap();
        assert!((prod[0] - b[0]).abs() < 1e-12 && (prod[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0][..], &[2.0, 6.0][..]]).unwrap();
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).unwrap().approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn trace_requires_square() {
        assert!(matches!(sample().trace(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(5, 0)];
    }

    #[test]
    fn debug_output_contains_dimensions() {
        let text = format!("{:?}", sample());
        assert!(text.contains("2x3"));
    }
}
