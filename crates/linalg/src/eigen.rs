//! Eigenvalues of general (non-symmetric) real matrices.
//!
//! The spectral-expansion solution of a Markov-modulated queue requires all eigenvalues
//! of a real companion matrix, including complex-conjugate pairs.  The classical dense
//! route is used here:
//!
//! 1. **balancing** (diagonal similarity scaling) to reduce the norm spread,
//! 2. **reduction to upper Hessenberg form** by stabilised elementary similarity
//!    transformations,
//! 3. the **Francis implicit double-shift QR iteration** on the Hessenberg matrix,
//!    which deflates eigenvalues one or two at a time and handles complex pairs in real
//!    arithmetic.
//!
//! The implementation follows the structure of the EISPACK routines `balanc`, `elmhes`
//! and `hqr` (also described in *Numerical Recipes*), adapted to modern floating-point
//! convergence criteria.
//!
//! # Example
//!
//! ```
//! use urs_linalg::{eigenvalues, Matrix};
//!
//! # fn main() -> Result<(), urs_linalg::LinalgError> {
//! // A rotation-and-scale matrix with eigenvalues 1 ± 2i.
//! let a = Matrix::from_rows(&[&[1.0, -2.0][..], &[2.0, 1.0][..]])?;
//! let eig = eigenvalues(&a)?;
//! assert!(eig.iter().any(|z| (z.re - 1.0).abs() < 1e-10 && (z.im - 2.0).abs() < 1e-10));
//! # Ok(())
//! # }
//! ```

use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Options controlling the QR eigenvalue iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenOptions {
    /// Whether to balance the matrix before reduction (recommended; default `true`).
    pub balance: bool,
    /// Maximum number of QR iterations allowed per eigenvalue (default 60).
    pub max_iterations_per_eigenvalue: usize,
}

impl Default for EigenOptions {
    fn default() -> Self {
        EigenOptions { balance: true, max_iterations_per_eigenvalue: 60 }
    }
}

/// Computes all eigenvalues of a square real matrix with default options.
///
/// The eigenvalues are returned in no particular order; complex eigenvalues appear in
/// conjugate pairs.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`], [`LinalgError::InvalidInput`] (empty or
/// non-finite input) or [`LinalgError::NoConvergence`].
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    eigenvalues_with(a, EigenOptions::default())
}

/// Computes all eigenvalues of a square real matrix with explicit [`EigenOptions`].
///
/// # Errors
///
/// Same conditions as [`eigenvalues`].
pub fn eigenvalues_with(a: &Matrix, options: EigenOptions) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidInput("matrix must be non-empty".into()));
    }
    if !a.is_finite() {
        return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
    }
    if n == 1 {
        return Ok(vec![Complex::from_real(a[(0, 0)])]);
    }
    if n == 2 {
        return Ok(eig2(a[(0, 0)], a[(0, 1)], a[(1, 0)], a[(1, 1)]).to_vec());
    }
    let mut work = a.clone();
    if options.balance {
        balance(&mut work);
    }
    to_hessenberg(&mut work);
    hqr(&mut work, options.max_iterations_per_eigenvalue)
}

/// Closed-form eigenvalues of a 2×2 real matrix.
fn eig2(a: f64, b: f64, c: f64, d: f64) -> [Complex; 2] {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        [Complex::from_real(tr / 2.0 + sq), Complex::from_real(tr / 2.0 - sq)]
    } else {
        let sq = (-disc).sqrt();
        [Complex::new(tr / 2.0, sq), Complex::new(tr / 2.0, -sq)]
    }
}

/// Balances a square matrix in place by diagonal similarity transformations
/// (EISPACK `balanc`).  Eigenvalues are preserved exactly.
pub fn balance(a: &mut Matrix) {
    const RADIX: f64 = 2.0;
    let n = a.rows();
    let sqrdx = RADIX * RADIX;
    loop {
        let mut done = true;
        for i in 0..n {
            let mut r = 0.0;
            let mut c = 0.0;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c != 0.0 && r != 0.0 {
                let mut g = r / RADIX;
                let mut f = 1.0;
                let s = c + r;
                let mut c_scaled = c;
                while c_scaled < g {
                    f *= RADIX;
                    c_scaled *= sqrdx;
                }
                g = r * RADIX;
                while c_scaled > g {
                    f /= RADIX;
                    c_scaled /= sqrdx;
                }
                if (c_scaled + r) / f < 0.95 * s {
                    done = false;
                    let g = 1.0 / f;
                    for j in 0..n {
                        a[(i, j)] *= g;
                    }
                    for j in 0..n {
                        a[(j, i)] *= f;
                    }
                }
            }
        }
        if done {
            break;
        }
    }
}

/// Reduces a square matrix to upper Hessenberg form in place using stabilised
/// elementary similarity transformations (EISPACK `elmhes`), then zeroes the junk below
/// the first subdiagonal.
pub fn to_hessenberg(a: &mut Matrix) {
    let n = a.rows();
    if n < 3 {
        return;
    }
    for m in 1..(n - 1) {
        // Pivot: largest entry in column m-1 at or below row m.
        let mut x = 0.0_f64;
        let mut pivot = m;
        for j in m..n {
            if a[(j, m - 1)].abs() > x.abs() {
                x = a[(j, m - 1)];
                pivot = j;
            }
        }
        if pivot != m {
            for j in (m - 1)..n {
                let tmp = a[(pivot, j)];
                a[(pivot, j)] = a[(m, j)];
                a[(m, j)] = tmp;
            }
            for j in 0..n {
                let tmp = a[(j, pivot)];
                a[(j, pivot)] = a[(j, m)];
                a[(j, m)] = tmp;
            }
        }
        if x != 0.0 {
            for i in (m + 1)..n {
                let mut y = a[(i, m - 1)];
                if y != 0.0 {
                    y /= x;
                    a[(i, m - 1)] = y;
                    for j in m..n {
                        let delta = y * a[(m, j)];
                        a[(i, j)] -= delta;
                    }
                    for j in 0..n {
                        let delta = y * a[(j, i)];
                        a[(j, m)] += delta;
                    }
                }
            }
        }
    }
    // Clear the entries below the first subdiagonal (they held elimination multipliers).
    for i in 2..n {
        for j in 0..(i - 1) {
            a[(i, j)] = 0.0;
        }
    }
}

/// Fortran-style `SIGN(a, b)`: `|a|` with the sign of `b`.
#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Francis implicit double-shift QR iteration on an upper Hessenberg matrix
/// (EISPACK `hqr`).  Consumes the Hessenberg matrix, returns all eigenvalues.
fn hqr(h: &mut Matrix, max_its: usize) -> Result<Vec<Complex>> {
    let n = h.rows();
    let ni = n as isize;
    let at = |h: &Matrix, i: isize, j: isize| h[(i as usize, j as usize)];
    macro_rules! set {
        ($h:expr, $i:expr, $j:expr, $v:expr) => {
            $h[($i as usize, $j as usize)] = $v
        };
    }

    let mut wr = vec![0.0_f64; n];
    let mut wi = vec![0.0_f64; n];

    let mut anorm = 0.0;
    for i in 0..ni {
        let jstart = if i > 0 { i - 1 } else { 0 };
        for j in jstart..ni {
            anorm += at(h, i, j).abs();
        }
    }
    if anorm == 0.0 {
        return Ok(vec![Complex::ZERO; n]);
    }

    let mut nn: isize = ni - 1;
    let mut t = 0.0_f64;
    while nn >= 0 {
        let mut its: usize = 0;
        loop {
            // Look for a single small subdiagonal element.
            let mut l = nn;
            while l >= 1 {
                let mut s = at(h, l - 1, l - 1).abs() + at(h, l, l).abs();
                if s == 0.0 {
                    s = anorm;
                }
                if at(h, l, l - 1).abs() <= f64::EPSILON * s {
                    set!(h, l, l - 1, 0.0);
                    break;
                }
                l -= 1;
            }
            let mut x = at(h, nn, nn);
            if l == nn {
                // One real root found.
                wr[nn as usize] = x + t;
                wi[nn as usize] = 0.0;
                nn -= 1;
                break;
            }
            let mut y = at(h, nn - 1, nn - 1);
            let mut w = at(h, nn, nn - 1) * at(h, nn - 1, nn);
            if l == nn - 1 {
                // A pair of roots found.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let mut z = q.abs().sqrt();
                x += t;
                if q >= 0.0 {
                    z = p + sign(z, p);
                    wr[(nn - 1) as usize] = x + z;
                    wr[nn as usize] = x + z;
                    if z != 0.0 {
                        wr[nn as usize] = x - w / z;
                    }
                    wi[(nn - 1) as usize] = 0.0;
                    wi[nn as usize] = 0.0;
                } else {
                    wr[(nn - 1) as usize] = x + p;
                    wr[nn as usize] = x + p;
                    wi[nn as usize] = z;
                    wi[(nn - 1) as usize] = -z;
                }
                nn -= 2;
                break;
            }
            // No convergence yet: perform a double QR sweep.
            if its >= max_its {
                return Err(LinalgError::NoConvergence {
                    algorithm: "francis double-shift QR",
                    iterations: its,
                });
            }
            if its > 0 && its.is_multiple_of(10) {
                // Exceptional shift to break (near-)cyclic behaviour.
                t += x;
                for i in 0..=nn {
                    let v = at(h, i, i) - x;
                    set!(h, i, i, v);
                }
                let s = at(h, nn, nn - 1).abs() + at(h, nn - 1, nn - 2).abs();
                y = 0.75 * s;
                x = y;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            let mut p = 0.0_f64;
            let mut q = 0.0_f64;
            let mut r = 0.0_f64;
            while m >= l {
                let z = at(h, m, m);
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / at(h, m + 1, m) + at(h, m, m + 1);
                q = at(h, m + 1, m + 1) - z - rr - ss;
                r = at(h, m + 2, m + 1);
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = at(h, m, m - 1).abs() * (q.abs() + r.abs());
                let v = p.abs() * (at(h, m - 1, m - 1).abs() + z.abs() + at(h, m + 1, m + 1).abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nn {
                set!(h, i, i - 2, 0.0);
                if i != m + 2 {
                    set!(h, i, i - 3, 0.0);
                }
            }
            // Double QR step on rows l..nn and columns m..nn.
            let mut k = m;
            while k < nn {
                if k != m {
                    p = at(h, k, k - 1);
                    q = at(h, k + 1, k - 1);
                    r = if k != nn - 1 { at(h, k + 2, k - 1) } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s != 0.0 {
                    if k == m {
                        if l != m {
                            let v = -at(h, k, k - 1);
                            set!(h, k, k - 1, v);
                        }
                    } else {
                        set!(h, k, k - 1, -s * x);
                    }
                    p += s;
                    x = p / s;
                    y = q / s;
                    let z = r / s;
                    q /= p;
                    r /= p;
                    // Row modification.
                    for j in k..=nn {
                        let mut pp = at(h, k, j) + q * at(h, k + 1, j);
                        if k != nn - 1 {
                            pp += r * at(h, k + 2, j);
                            let v = at(h, k + 2, j) - pp * z;
                            set!(h, k + 2, j, v);
                        }
                        let v1 = at(h, k + 1, j) - pp * y;
                        set!(h, k + 1, j, v1);
                        let v0 = at(h, k, j) - pp * x;
                        set!(h, k, j, v0);
                    }
                    // Column modification.
                    let mmin = if nn < k + 3 { nn } else { k + 3 };
                    for i in l..=mmin {
                        let mut pp = x * at(h, i, k) + y * at(h, i, k + 1);
                        if k != nn - 1 {
                            pp += z * at(h, i, k + 2);
                            let v = at(h, i, k + 2) - pp * r;
                            set!(h, i, k + 2, v);
                        }
                        let v1 = at(h, i, k + 1) - pp * q;
                        set!(h, i, k + 1, v1);
                        let v0 = at(h, i, k) - pp;
                        set!(h, i, k, v0);
                    }
                }
                k += 1;
            }
        }
    }
    Ok(wr.into_iter().zip(wi).map(|(re, im)| Complex::new(re, im)).collect())
}

/// Sorts eigenvalues by decreasing modulus (ties broken by real part, then imaginary
/// part) — a convenient canonical order for tests and reporting.
pub fn sort_by_modulus_desc(eigenvalues: &mut [Complex]) {
    eigenvalues.sort_by(|a, b| {
        b.abs().total_cmp(&a.abs()).then(b.re.total_cmp(&a.re)).then(b.im.total_cmp(&a.im))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks that `computed` and `expected` agree as multisets, within `tol`.
    fn assert_spectrum(mut computed: Vec<Complex>, mut expected: Vec<Complex>, tol: f64) {
        assert_eq!(computed.len(), expected.len());
        sort_by_modulus_desc(&mut computed);
        sort_by_modulus_desc(&mut expected);
        for e in &expected {
            let (idx, best) = computed
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    ((**a) - *e).abs().partial_cmp(&((**b) - *e).abs()).unwrap()
                })
                .map(|(i, z)| (i, *z))
                .unwrap();
            assert!(
                (best - *e).abs() < tol,
                "eigenvalue {e} not found (closest was {best}); spectrum {computed:?}"
            );
            computed.remove(idx);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 0.5, 7.0]);
        let eig = eigenvalues(&a).unwrap();
        assert_spectrum(
            eig,
            vec![3.0, -1.0, 0.5, 7.0].into_iter().map(Complex::from_real).collect(),
            1e-10,
        );
    }

    #[test]
    fn one_by_one_and_two_by_two() {
        let a = Matrix::from_rows(&[&[5.0][..]]).unwrap();
        assert_eq!(eigenvalues(&a).unwrap(), vec![Complex::from_real(5.0)]);

        let b = Matrix::from_rows(&[&[0.0, 1.0][..], &[-1.0, 0.0][..]]).unwrap();
        assert_spectrum(eigenvalues(&b).unwrap(), vec![Complex::I, -Complex::I], 1e-12);
    }

    #[test]
    fn upper_triangular_eigenvalues_are_the_diagonal() {
        let a = Matrix::from_rows(&[
            &[1.0, 5.0, -3.0, 2.0][..],
            &[0.0, 2.0, 8.0, 1.0][..],
            &[0.0, 0.0, 3.0, -7.0][..],
            &[0.0, 0.0, 0.0, 4.0][..],
        ])
        .unwrap();
        assert_spectrum(
            eigenvalues(&a).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0].into_iter().map(Complex::from_real).collect(),
            1e-8,
        );
    }

    #[test]
    fn companion_matrix_of_known_polynomial() {
        // p(z) = (z-1)(z-2)(z-3)(z+4) = z^4 - 2z^3 - 13z^2 + 38z - 24
        // companion (last row holds -coefficients)
        let a = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0][..],
            &[0.0, 0.0, 1.0, 0.0][..],
            &[0.0, 0.0, 0.0, 1.0][..],
            &[24.0, -38.0, 13.0, 2.0][..],
        ])
        .unwrap();
        assert_spectrum(
            eigenvalues(&a).unwrap(),
            vec![1.0, 2.0, 3.0, -4.0].into_iter().map(Complex::from_real).collect(),
            1e-8,
        );
    }

    #[test]
    fn complex_conjugate_pairs() {
        // Block diagonal with blocks giving 2±3i and -1±0.5i
        let a = Matrix::from_rows(&[
            &[2.0, 3.0, 0.0, 0.0][..],
            &[-3.0, 2.0, 0.0, 0.0][..],
            &[0.0, 0.0, -1.0, 0.5][..],
            &[0.0, 0.0, -0.5, -1.0][..],
        ])
        .unwrap();
        assert_spectrum(
            eigenvalues(&a).unwrap(),
            vec![
                Complex::new(2.0, 3.0),
                Complex::new(2.0, -3.0),
                Complex::new(-1.0, 0.5),
                Complex::new(-1.0, -0.5),
            ],
            1e-8,
        );
    }

    #[test]
    fn eigenvalue_sum_equals_trace_and_product_equals_det() {
        // A moderately sized pseudo-random matrix with reproducible entries.
        let n = 12;
        let mut seed = 42_u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let eig = eigenvalues(&a).unwrap();
        let sum: Complex = eig.iter().copied().sum();
        let trace = a.trace().unwrap();
        assert!((sum.re - trace).abs() < 1e-8, "trace {trace} vs eig sum {sum}");
        assert!(sum.im.abs() < 1e-8);
        let prod = eig.iter().fold(Complex::ONE, |acc, z| acc * *z);
        let det = a.determinant().unwrap();
        assert!((prod.re - det).abs() < 1e-6 * det.abs().max(1.0), "det {det} vs prod {prod}");
        assert!(prod.im.abs() < 1e-6);
    }

    #[test]
    fn stochastic_matrix_has_unit_eigenvalue() {
        // Row-stochastic matrix: largest eigenvalue must be exactly 1.
        let a = Matrix::from_rows(&[
            &[0.5, 0.3, 0.2][..],
            &[0.1, 0.8, 0.1][..],
            &[0.25, 0.25, 0.5][..],
        ])
        .unwrap();
        let mut eig = eigenvalues(&a).unwrap();
        sort_by_modulus_desc(&mut eig);
        assert!((eig[0] - Complex::ONE).abs() < 1e-10);
        assert!(eig.iter().skip(1).all(|z| z.abs() < 1.0 + 1e-12));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 5);
        let eig = eigenvalues(&a).unwrap();
        assert!(eig.iter().all(|z| z.abs() < 1e-14));
    }

    #[test]
    fn defective_matrix_jordan_block() {
        // A 3x3 Jordan block with eigenvalue 2 (algebraic multiplicity 3).
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0][..], &[0.0, 2.0, 1.0][..], &[0.0, 0.0, 2.0][..]])
                .unwrap();
        let eig = eigenvalues(&a).unwrap();
        for z in eig {
            // Multiple eigenvalues of defective matrices are only accurate to ~eps^(1/3).
            assert!((z - Complex::from_real(2.0)).abs() < 1e-4, "got {z}");
        }
    }

    #[test]
    fn badly_scaled_matrix_benefits_from_balancing() {
        let a = Matrix::from_rows(&[
            &[1.0, 1e6, 0.0][..],
            &[1e-6, 2.0, 1e6][..],
            &[0.0, 1e-6, 3.0][..],
        ])
        .unwrap();
        let eig = eigenvalues(&a).unwrap();
        let sum: f64 = eig.iter().map(|z| z.re).sum();
        assert!((sum - 6.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(matches!(eigenvalues(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let nan = Matrix::from_rows(&[&[f64::NAN, 0.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(eigenvalues(&nan).is_err());
    }

    #[test]
    fn hessenberg_preserves_eigenvalues() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0][..],
            &[1.0, 2.0, 0.0, 1.0][..],
            &[-2.0, 0.0, 3.0, -2.0][..],
            &[2.0, 1.0, -2.0, -1.0][..],
        ])
        .unwrap();
        let mut h = a.clone();
        to_hessenberg(&mut h);
        // Hessenberg form: zero below the first subdiagonal.
        for i in 2..4 {
            for j in 0..(i - 1) {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
        let eig_a = eigenvalues(&a).unwrap();
        let eig_h = eigenvalues(&h).unwrap();
        assert_spectrum(eig_h, eig_a, 1e-7);
    }

    #[test]
    fn balance_preserves_eigenvalue_trace() {
        let a = Matrix::from_rows(&[&[1.0, 1000.0][..], &[0.001, 2.0][..]]).unwrap();
        let mut b = a.clone();
        balance(&mut b);
        assert!((b.trace().unwrap() - a.trace().unwrap()).abs() < 1e-12);
        assert_spectrum(eigenvalues(&b).unwrap(), eigenvalues(&a).unwrap(), 1e-9);
    }

    #[test]
    fn larger_companion_with_roots_inside_and_outside_unit_disk() {
        // Roots: 0.2, 0.5, 0.9, 1.25, 2.0, -0.7
        let roots = [0.2, 0.5, 0.9, 1.25, 2.0, -0.7];
        // Build polynomial coefficients (monic), then its companion matrix.
        let mut coeffs = vec![1.0];
        for &r in &roots {
            let mut next = vec![0.0; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i] += c;
                next[i + 1] -= c * r;
            }
            coeffs = next;
        }
        let n = roots.len();
        let mut comp = Matrix::zeros(n, n);
        for i in 0..(n - 1) {
            comp[(i, i + 1)] = 1.0;
        }
        for j in 0..n {
            comp[(n - 1, j)] = -coeffs[n - j];
        }
        assert_spectrum(
            eigenvalues(&comp).unwrap(),
            roots.iter().map(|&r| Complex::from_real(r)).collect(),
            1e-7,
        );
    }
}
