//! Complex LU factorisation with partial pivoting and null-space extraction.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::Result;

/// An LU factorisation `P·A = L·U` of a square complex matrix with partial pivoting.
///
/// In addition to the usual solve/determinant operations, this type can extract a
/// (right or left) null vector of a numerically singular matrix — exactly what the
/// spectral-expansion solver needs to turn an eigenvalue of the characteristic matrix
/// polynomial into its eigenvector.
///
/// # Example
///
/// ```
/// use urs_linalg::{CMatrix, Complex, CluDecomposition};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Singular matrix [[1, 1], [1, 1]]: left null vector is proportional to (1, -1).
/// let mut a = CMatrix::zeros(2, 2);
/// for i in 0..2 { for j in 0..2 { a[(i, j)] = Complex::ONE; } }
/// let v = CluDecomposition::new_allow_singular(&a)?.left_null_vector()?;
/// assert!((v[0] + v[1]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CluDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
    perm_sign: f64,
    /// Index of the smallest pivot (by modulus) and its value.
    min_pivot: (usize, f64),
}

/// Pivots below this absolute threshold are treated as exactly zero.
const PIVOT_EPS: f64 = 1e-300;

impl CluDecomposition {
    /// Factorises a square complex matrix, rejecting singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::InvalidInput`] (non-finite
    /// entries) or [`LinalgError::Singular`].
    pub fn new(a: &CMatrix) -> Result<Self> {
        let lu = Self::new_allow_singular(a)?;
        if lu.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: lu.min_pivot.0 });
        }
        Ok(lu)
    }

    /// Factorises a square complex matrix, tolerating singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::InvalidInput`].
    pub fn new_allow_singular(a: &CMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidInput("matrix must be non-empty".into()));
        }
        let mut lu = a.clone();
        for i in 0..n {
            for j in 0..n {
                if !lu[(i, j)].is_finite() {
                    return Err(LinalgError::InvalidInput(
                        "matrix contains non-finite values".into(),
                    ));
                }
            }
        }
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut min_pivot = (0usize, f64::INFINITY);

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            if pivot_val < min_pivot.1 {
                min_pivot = (k, pivot_val);
            }
            if pivot_val < PIVOT_EPS {
                continue;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != Complex::ZERO {
                    for j in (k + 1)..n {
                        let delta = factor * lu[(k, j)];
                        lu[(i, j)] -= delta;
                    }
                }
            }
        }
        Ok(CluDecomposition { lu, perm, perm_sign, min_pivot })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Modulus of the smallest pivot encountered; a small value indicates (near)
    /// singularity.
    pub fn smallest_pivot(&self) -> f64 {
        self.min_pivot.1
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> Complex {
        if self.min_pivot.1 < PIVOT_EPS {
            return Complex::ZERO;
        }
        let mut det = Complex::from_real(self.perm_sign);
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is singular or
    /// [`LinalgError::DimensionMismatch`] for a wrong-sized right-hand side.
    #[allow(clippy::needless_range_loop)] // triangular solves read x[j] while writing x[i]
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>> {
        if self.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: self.min_pivot.0 });
        }
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex LU solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut x: Vec<Complex> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Returns a right null vector `x` (with `A x ≈ 0`, normalised to unit maximum
    /// modulus) of a numerically singular matrix.
    ///
    /// The vector is obtained by back-substitution through `U`, treating the smallest
    /// pivot as exactly zero.  For a matrix evaluated at an accurate eigenvalue this is
    /// the standard and numerically adequate way to recover the eigenvector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the back-substitution produces a
    /// non-finite vector (which indicates the matrix was not actually near-singular).
    #[allow(clippy::needless_range_loop)] // back-substitution reads x[j] while writing x[i]
    pub fn null_vector(&self) -> Result<Vec<Complex>> {
        let n = self.dim();
        let k = self.min_pivot.0;
        let mut x = vec![Complex::ZERO; n];
        x[k] = Complex::ONE;
        // Solve U[0..k, 0..k] * x[0..k] = -U[0..k, k] by back-substitution.
        for i in (0..k).rev() {
            let mut sum = -self.lu[(i, k)];
            for j in (i + 1)..k {
                sum -= self.lu[(i, j)] * x[j];
            }
            let pivot = self.lu[(i, i)];
            if pivot.abs() < PIVOT_EPS {
                // A second tiny pivot: fall back to treating this component as free.
                x[i] = Complex::ZERO;
            } else {
                x[i] = sum / pivot;
            }
        }
        let max = x.iter().fold(0.0_f64, |m, z| m.max(z.abs()));
        if !(max.is_finite()) || max == 0.0 {
            return Err(LinalgError::InvalidInput(
                "null-vector extraction failed: matrix is not numerically singular".into(),
            ));
        }
        for z in &mut x {
            *z = *z / max;
        }
        Ok(x)
    }

    /// Returns a left null vector `u` (a row vector with `u A ≈ 0`) of a numerically
    /// singular matrix.
    ///
    /// Internally this factorises `Aᵀ` and returns its right null vector, so it costs
    /// an additional O(n³) factorisation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`null_vector`](Self::null_vector).
    pub fn left_null_vector(&self) -> Result<Vec<Complex>> {
        // Reconstruct A from the stored factors would lose accuracy; instead callers
        // normally use `left_null_vector_of`. This method re-factorises the transpose of
        // the reconstructed permuted product only when the original matrix is not
        // available, so we keep a copy-free path: rebuild A = P⁻¹ L U.
        let n = self.dim();
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // (L U)_{ij}
                let mut sum = Complex::ZERO;
                let upper = i.min(j);
                for k in 0..=upper {
                    let l = if k == i {
                        Complex::ONE
                    } else if k < i {
                        self.lu[(i, k)]
                    } else {
                        Complex::ZERO
                    };
                    let u = if k <= j { self.lu[(k, j)] } else { Complex::ZERO };
                    sum += l * u;
                }
                a[(self.perm[i], j)] = sum;
            }
        }
        CluDecomposition::new_allow_singular(&a.transpose())?.null_vector()
    }
}

/// Convenience function: left null vector of `a` (row vector `u` with `u·a ≈ 0`).
///
/// # Errors
///
/// Propagates errors from the complex LU factorisation and null-vector extraction.
pub(crate) fn left_null_vector_of(a: &CMatrix) -> Result<Vec<Complex>> {
    CluDecomposition::new_allow_singular(&a.transpose())?.null_vector()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &CMatrix, x: &[Complex], b: &[Complex]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter().zip(b).map(|(p, q)| (*p - *q).abs()).fold(0.0_f64, f64::max)
    }

    #[test]
    fn solve_complex_system() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(0, 1)] = Complex::new(2.0, 0.0);
        a[(1, 0)] = Complex::new(0.0, -1.0);
        a[(1, 1)] = Complex::new(3.0, 1.0);
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let x = CluDecomposition::new(&a).unwrap().solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn determinant_of_diagonal() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = Complex::new(2.0, 0.0);
        a[(1, 1)] = Complex::new(0.0, 1.0);
        a[(2, 2)] = Complex::new(1.0, -1.0);
        let det = CluDecomposition::new(&a).unwrap().determinant();
        // 2 * i * (1 - i) = 2i + 2 = 2 + 2i
        assert!((det - Complex::new(2.0, 2.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_detection_and_null_vector() {
        // rank-1 matrix: rows (1, 2), (2, 4)
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 0.0);
        a[(0, 1)] = Complex::new(2.0, 0.0);
        a[(1, 0)] = Complex::new(2.0, 0.0);
        a[(1, 1)] = Complex::new(4.0, 0.0);
        assert!(CluDecomposition::new(&a).is_err());
        let lu = CluDecomposition::new_allow_singular(&a).unwrap();
        let x = lu.null_vector().unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(ax.iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn left_null_vector_annihilates_rows() {
        let mut a = CMatrix::zeros(3, 3);
        // Columns 0 and 1 independent, column 2 = column 0 + column 1 -> singular.
        let vals = [[1.0, 2.0, 3.0], [0.5, -1.0, -0.5], [2.0, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = Complex::new(vals[i][j], 0.0);
            }
        }
        // Make the matrix row-rank deficient instead: set row 2 = row0 + row1.
        for j in 0..3 {
            a[(2, j)] = a[(0, j)] + a[(1, j)];
        }
        let u = left_null_vector_of(&a).unwrap();
        let ua = a.vecmat(&u).unwrap();
        assert!(ua.iter().all(|z| z.abs() < 1e-12), "u A = {ua:?}");
    }

    #[test]
    fn left_null_vector_method_matches_helper() {
        let mut a = CMatrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                a[(i, j)] = Complex::new(1.0, (i + j) as f64);
            }
        }
        // Make singular: row 1 = 2 * row 0.
        for j in 0..2 {
            a[(1, j)] = a[(0, j)] * 2.0;
        }
        let via_method =
            CluDecomposition::new_allow_singular(&a).unwrap().left_null_vector().unwrap();
        let ua = a.vecmat(&via_method).unwrap();
        assert!(ua.iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = CMatrix::identity(2);
        let lu = CluDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[Complex::ONE]).is_err());
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = CMatrix::zeros(0, 0);
        assert!(CluDecomposition::new_allow_singular(&a).is_err());
    }
}
