//! Blocked complex LU factorisation with partial pivoting and null-space extraction.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::par_band_rows;
use crate::parallel::ThreadPool;
use crate::workspace::Workspace;
use crate::Result;

/// An LU factorisation `P·A = L·U` of a square complex matrix with partial pivoting.
///
/// In addition to the usual solve/determinant operations, this type can extract a
/// (right or left) null vector of a numerically singular matrix — exactly what the
/// spectral-expansion solver needs to turn an eigenvalue of the characteristic matrix
/// polynomial into its eigenvector.
///
/// # Example
///
/// ```
/// use urs_linalg::{CMatrix, Complex, CluDecomposition};
///
/// # fn main() -> Result<(), urs_linalg::LinalgError> {
/// // Singular matrix [[1, 1], [1, 1]]: left null vector is proportional to (1, -1).
/// let mut a = CMatrix::zeros(2, 2);
/// for i in 0..2 { for j in 0..2 { a[(i, j)] = Complex::ONE; } }
/// let v = CluDecomposition::new_allow_singular(&a)?.left_null_vector()?;
/// assert!((v[0] + v[1]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CluDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
    perm_sign: f64,
    /// Index of the smallest pivot (by modulus) and its value.
    min_pivot: (usize, f64),
}

/// Pivots below this absolute threshold are treated as exactly zero.
const PIVOT_EPS: f64 = 1e-300;

/// Panel width of the blocked elimination (complex elements are twice the size of
/// real ones, so the panel is half of the real kernel's).
const PANEL: usize = 24;

impl CluDecomposition {
    /// Factorises a square complex matrix, rejecting singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::InvalidInput`] (non-finite
    /// entries) or [`LinalgError::Singular`].
    pub fn new(a: &CMatrix) -> Result<Self> {
        Self::from_matrix(a.clone())
    }

    /// [`new`](Self::new) with the trailing updates of the blocked elimination
    /// parallelised on `pool`; see [`from_matrix_with`](Self::from_matrix_with).
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_matrix_with`](Self::from_matrix_with).
    pub fn new_with(a: &CMatrix, pool: &ThreadPool) -> Result<Self> {
        Self::from_matrix_with(a.clone(), pool)
    }

    /// Factorises a square complex matrix taking ownership of its storage (no copy),
    /// rejecting singular input.  The move-in twin of [`new`](Self::new) for
    /// workspace-recycled buffers; recover the storage with
    /// [`into_matrix`](Self::into_matrix).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_matrix(a: CMatrix) -> Result<Self> {
        Self::from_matrix_with(a, &ThreadPool::serial())
    }

    /// [`from_matrix`](Self::from_matrix) with the trailing-submatrix updates of the
    /// blocked elimination partitioned across the workers of `pool` — the complex
    /// twin of [`LuDecomposition::from_matrix_with`]: panel factorisation stays
    /// serial, the row-independent phase-2b update runs in bands, and every row's
    /// ascending-`k` accumulation is unchanged, so the factors are bit-identical at
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`from_matrix`](Self::from_matrix), plus
    /// [`LinalgError::WorkerPanic`] if a worker panicked.
    ///
    /// [`LuDecomposition::from_matrix_with`]: crate::LuDecomposition::from_matrix_with
    pub fn from_matrix_with(a: CMatrix, pool: &ThreadPool) -> Result<Self> {
        let lu = Self::factor_allow_singular(a, pool)?;
        if lu.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: lu.min_pivot.0 });
        }
        Ok(lu)
    }

    /// Factorises a square complex matrix, tolerating singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::InvalidInput`].
    pub fn new_allow_singular(a: &CMatrix) -> Result<Self> {
        Self::factor_allow_singular(a.clone(), &ThreadPool::serial())
    }

    /// [`new_allow_singular`](Self::new_allow_singular) with the trailing updates
    /// parallelised on `pool`; see [`from_matrix_with`](Self::from_matrix_with) for
    /// the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::InvalidInput`], or
    /// [`LinalgError::WorkerPanic`].
    pub fn new_allow_singular_with(a: &CMatrix, pool: &ThreadPool) -> Result<Self> {
        Self::factor_allow_singular(a.clone(), pool)
    }

    /// Blocked right-looking elimination; same arithmetic as the unblocked textbook
    /// algorithm (panels only defer the trailing update, they never reorder the
    /// per-element accumulation), so results are identical bit for bit.
    fn factor_allow_singular(a: CMatrix, pool: &ThreadPool) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidInput("matrix must be non-empty".into()));
        }
        let mut lu = a;
        if lu.as_slice().iter().any(|z| !z.is_finite()) {
            return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
        }
        let d = lu.as_mut_slice();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut min_pivot = (0usize, f64::INFINITY);
        let mut active = [false; PANEL];

        // urs-analyze: begin(no_alloc)
        for kk in (0..n).step_by(PANEL) {
            let k_end = (kk + PANEL).min(n);
            // 1. Factor the panel columns kk..k_end with full-height pivoting.
            for k in kk..k_end {
                let mut pivot_row = k;
                let mut pivot_val = d[k * n + k].abs();
                for i in (k + 1)..n {
                    let v = d[i * n + k].abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
                if pivot_row != k {
                    for j in 0..n {
                        d.swap(k * n + j, pivot_row * n + j);
                    }
                    perm.swap(k, pivot_row);
                    perm_sign = -perm_sign;
                }
                if pivot_val < min_pivot.1 {
                    min_pivot = (k, pivot_val);
                }
                if pivot_val < PIVOT_EPS {
                    active[k - kk] = false;
                    continue;
                }
                active[k - kk] = true;
                let pivot = d[k * n + k];
                let (pivot_rows, trail) = d.split_at_mut((k + 1) * n);
                let u_row = &pivot_rows[k * n + (k + 1)..k * n + k_end];
                for row in trail.chunks_exact_mut(n) {
                    let factor = row[k] / pivot;
                    row[k] = factor;
                    if factor != Complex::ZERO {
                        for (x, &u) in row[k + 1..k_end].iter_mut().zip(u_row) {
                            *x -= factor * u;
                        }
                    }
                }
            }
            // 2. Deferred update of the trailing columns k_end..n.
            if k_end == n {
                continue;
            }
            for k in kk..k_end {
                if !active[k - kk] {
                    continue;
                }
                let (upper, lower) = d.split_at_mut((k + 1) * n);
                let u_row = &upper[k * n + k_end..(k + 1) * n];
                for row in lower.chunks_exact_mut(n).take(k_end - k - 1) {
                    let factor = row[k];
                    if factor != Complex::ZERO {
                        for (x, &u) in row[k_end..].iter_mut().zip(u_row) {
                            *x -= factor * u;
                        }
                    }
                }
            }
            // Rows below the panel are mutually independent, so the update can run in
            // row bands across the pool; each row's ascending-k loop is unchanged.
            let (panel_rows, trailing_rows) = d.split_at_mut(k_end * n);
            let trailing_count = trailing_rows.len() / n;
            let band_rows = par_band_rows(trailing_count, k_end - kk, n - k_end, pool.threads());
            if band_rows >= trailing_count {
                clu_trailing_update(trailing_rows, panel_rows, &active, kk, k_end, n);
            } else {
                let panel_ref: &[Complex] = panel_rows;
                pool.par_chunks_mut(trailing_rows, band_rows * n, |_, band| {
                    clu_trailing_update(band, panel_ref, &active, kk, k_end, n);
                })?;
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(CluDecomposition { lu, perm, perm_sign, min_pivot })
    }

    /// Consumes the decomposition, returning the matrix holding the packed factors
    /// (for [`Workspace`] recycling).
    pub fn into_matrix(self) -> CMatrix {
        self.lu
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Modulus of the smallest pivot encountered; a small value indicates (near)
    /// singularity.
    pub fn smallest_pivot(&self) -> f64 {
        self.min_pivot.1
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> Complex {
        if self.min_pivot.1 < PIVOT_EPS {
            return Complex::ZERO;
        }
        let mut det = Complex::from_real(self.perm_sign);
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    fn ensure_regular(&self) -> Result<()> {
        if self.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: self.min_pivot.0 });
        }
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is singular or
    /// [`LinalgError::DimensionMismatch`] for a wrong-sized right-hand side.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>> {
        let mut x = vec![Complex::ZERO; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus a length check on `x`.
    pub fn solve_into(&self, b: &[Complex], x: &mut [Complex]) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex LU solve",
                left: (n, n),
                right: (b.len().max(x.len()), 1),
            });
        }
        let d = self.lu.as_slice();
        // urs-analyze: begin(no_alloc)
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let row = &d[i * n..i * n + i];
            let mut sum = x[i];
            for (l, &xj) in row.iter().zip(x.iter()) {
                sum -= *l * xj;
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let row = &d[i * n..(i + 1) * n];
            let mut sum = x[i];
            for (u, &xj) in row[i + 1..].iter().zip(x[i + 1..].iter()) {
                sum -= *u * xj;
            }
            x[i] = sum / row[i];
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Solves `A X = B` into a caller-provided matrix (no allocation), eliminating
    /// all right-hand-side columns simultaneously with whole-row operations.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus dimension checks on `B` and `out`.
    pub fn solve_matrix_into(&self, b: &CMatrix, out: &mut CMatrix) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.rows() != n || out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex LU matrix solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let w = b.cols();
        for (i, &p) in self.perm.iter().enumerate() {
            out.as_mut_slice()[i * w..(i + 1) * w]
                .copy_from_slice(&b.as_slice()[p * w..(p + 1) * w]);
        }
        let d = self.lu.as_slice();
        let x = out.as_mut_slice();
        for i in 1..n {
            let (prev, rest) = x.split_at_mut(i * w);
            let xi = &mut rest[..w];
            for (j, l) in d[i * n..i * n + i].iter().enumerate() {
                if *l != Complex::ZERO {
                    let xj = &prev[j * w..(j + 1) * w];
                    for (t, &v) in xi.iter_mut().zip(xj) {
                        *t -= *l * v;
                    }
                }
            }
        }
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut((i + 1) * w);
            let xi = &mut head[i * w..];
            let row = &d[i * n..(i + 1) * n];
            for (j, u) in row[i + 1..].iter().enumerate() {
                if *u != Complex::ZERO {
                    let xj = &tail[j * w..(j + 1) * w];
                    for (t, &v) in xi.iter_mut().zip(xj) {
                        *t -= *u * v;
                    }
                }
            }
            let pivot = row[i];
            for t in xi.iter_mut() {
                *t /= pivot;
            }
        }
        Ok(())
    }

    /// Solves `X A = B` (right division) into a caller-provided matrix, reusing the
    /// existing factors through `Aᵀ = Uᵀ Lᵀ P`.
    ///
    /// This is what the block-tridiagonal elimination uses to form
    /// `W = L_i · D'⁻¹` — previously that required factorising `D'ᵀ` a second time.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus dimension checks on `B` and `out`.
    pub fn solve_right_matrix_into(
        &self,
        b: &CMatrix,
        out: &mut CMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.solve_right_matrix_into_with(b, out, ws, &ThreadPool::serial())
    }

    /// [`solve_right_matrix_into`](Self::solve_right_matrix_into) with the rows of
    /// `X` partitioned across the workers of `pool` — each row is an independent
    /// triangular solve, so bands run concurrently with per-worker scratch rows while
    /// the per-row substitution order (and hence the result, bit for bit) is
    /// unchanged.  The serial path borrows its scratch from `ws` as before.
    ///
    /// # Errors
    ///
    /// Same as [`solve_right_matrix_into`](Self::solve_right_matrix_into), plus
    /// [`LinalgError::WorkerPanic`] if a worker panicked.
    pub fn solve_right_matrix_into_with(
        &self,
        b: &CMatrix,
        out: &mut CMatrix,
        ws: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<()> {
        self.ensure_regular()?;
        let n = self.dim();
        if b.cols() != n || out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex LU right matrix solve",
                left: b.shape(),
                right: (n, n),
            });
        }
        for (t, &v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *t = v;
        }
        let d = self.lu.as_slice();
        let rows = out.rows();
        let band_rows = par_band_rows(rows, n, n, pool.threads());
        if band_rows >= rows {
            let mut scratch = ws.complex_buffer(n);
            for row in out.as_mut_slice().chunks_exact_mut(n) {
                cright_solve_row(row, d, &self.perm, &mut scratch, n);
            }
            ws.release_complex_buffer(scratch);
            return Ok(());
        }
        let perm = &self.perm;
        pool.par_chunks_mut_with(
            out.as_mut_slice(),
            band_rows * n,
            || vec![Complex::ZERO; n],
            |scratch, _, band| {
                for row in band.chunks_exact_mut(n) {
                    cright_solve_row(row, d, perm, scratch, n);
                }
            },
        )?;
        Ok(())
    }

    /// Returns a right null vector `x` (with `A x ≈ 0`, normalised to unit maximum
    /// modulus) of a numerically singular matrix.
    ///
    /// The vector is obtained by back-substitution through `U`, treating the smallest
    /// pivot as exactly zero.  For a matrix evaluated at an accurate eigenvalue this is
    /// the standard and numerically adequate way to recover the eigenvector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the back-substitution produces a
    /// non-finite vector (which indicates the matrix was not actually near-singular).
    #[allow(clippy::needless_range_loop)] // back-substitution reads x[j] while writing x[i]
    pub fn null_vector(&self) -> Result<Vec<Complex>> {
        let n = self.dim();
        let k = self.min_pivot.0;
        let mut x = vec![Complex::ZERO; n];
        x[k] = Complex::ONE;
        // Solve U[0..k, 0..k] * x[0..k] = -U[0..k, k] by back-substitution.
        for i in (0..k).rev() {
            let mut sum = -self.lu[(i, k)];
            for j in (i + 1)..k {
                sum -= self.lu[(i, j)] * x[j];
            }
            let pivot = self.lu[(i, i)];
            if pivot.abs() < PIVOT_EPS {
                // A second tiny pivot: fall back to treating this component as free.
                x[i] = Complex::ZERO;
            } else {
                x[i] = sum / pivot;
            }
        }
        let max = x.iter().fold(0.0_f64, |m, z| m.max(z.abs()));
        // urs-analyze: allow(float_cmp, reason = "exact-zero test: a max-abs of exactly 0.0 means the extracted vector is identically zero")
        if !(max.is_finite()) || max == 0.0 {
            return Err(LinalgError::InvalidInput(
                "null-vector extraction failed: matrix is not numerically singular".into(),
            ));
        }
        for z in &mut x {
            *z = *z / max;
        }
        Ok(x)
    }

    /// Returns a left null vector `u` (a row vector with `u A ≈ 0`) of a numerically
    /// singular matrix.
    ///
    /// Internally this factorises `Aᵀ` and returns its right null vector, so it costs
    /// an additional O(n³) factorisation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`null_vector`](Self::null_vector).
    pub fn left_null_vector(&self) -> Result<Vec<Complex>> {
        // Reconstruct A from the stored factors would lose accuracy; instead callers
        // normally use `left_null_vector_of`. This method re-factorises the transpose of
        // the reconstructed permuted product only when the original matrix is not
        // available, so we keep a copy-free path: rebuild A = P⁻¹ L U.
        let n = self.dim();
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // (L U)_{ij}
                let mut sum = Complex::ZERO;
                let upper = i.min(j);
                for k in 0..=upper {
                    let l = if k == i {
                        Complex::ONE
                    } else if k < i {
                        self.lu[(i, k)]
                    } else {
                        Complex::ZERO
                    };
                    let u = if k <= j { self.lu[(k, j)] } else { Complex::ZERO };
                    sum += l * u;
                }
                a[(self.perm[i], j)] = sum;
            }
        }
        CluDecomposition::new_allow_singular(&a.transpose())?.null_vector()
    }
}

/// Convenience function: left null vector of `a` (row vector `u` with `u·a ≈ 0`).
///
/// # Errors
///
/// Propagates errors from the complex LU factorisation and null-vector extraction.
pub(crate) fn left_null_vector_of(a: &CMatrix) -> Result<Vec<Complex>> {
    CluDecomposition::new_allow_singular(&a.transpose())?.null_vector()
}

/// Phase 2b of the blocked complex elimination over a band of rows below the panel;
/// shared by the serial loop and the per-worker bands so the per-row arithmetic
/// never depends on the thread count.
// urs-analyze: begin(no_alloc)
fn clu_trailing_update(
    rows: &mut [Complex],
    panel_rows: &[Complex],
    active: &[bool; PANEL],
    kk: usize,
    k_end: usize,
    n: usize,
) {
    for row in rows.chunks_exact_mut(n) {
        for k in kk..k_end {
            if !active[k - kk] {
                continue;
            }
            let factor = row[k];
            if factor == Complex::ZERO {
                continue;
            }
            let u_row = &panel_rows[k * n + k_end..(k + 1) * n];
            for (x, &u) in row[k_end..].iter_mut().zip(u_row) {
                *x -= factor * u;
            }
        }
    }
}

/// One row of the complex right division `X A = B`; the complex twin of the real
/// kernel's per-row routine, shared by the serial and banded parallel paths.
fn cright_solve_row(
    row: &mut [Complex],
    d: &[Complex],
    perm: &[usize],
    scratch: &mut [Complex],
    n: usize,
) {
    // w U = b: forward over columns using row j of U.
    for j in 0..n {
        let wj = row[j] / d[j * n + j];
        row[j] = wj;
        if wj != Complex::ZERO {
            for (x, &u) in row[j + 1..].iter_mut().zip(&d[j * n + j + 1..(j + 1) * n]) {
                *x -= wj * u;
            }
        }
    }
    // w L = w' (unit diagonal): backward over columns using row j of L.
    for j in (0..n).rev() {
        let wj = row[j];
        if wj != Complex::ZERO {
            for (x, &l) in row[..j].iter_mut().zip(&d[j * n..j * n + j]) {
                *x -= wj * l;
            }
        }
    }
    // X = W P: scatter within the row.
    scratch.copy_from_slice(row);
    for (k, &p) in perm.iter().enumerate() {
        row[p] = scratch[k];
    }
}
// urs-analyze: end(no_alloc)

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &CMatrix, x: &[Complex], b: &[Complex]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter().zip(b).map(|(p, q)| (*p - *q).abs()).fold(0.0_f64, f64::max)
    }

    #[test]
    fn solve_complex_system() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(0, 1)] = Complex::new(2.0, 0.0);
        a[(1, 0)] = Complex::new(0.0, -1.0);
        a[(1, 1)] = Complex::new(3.0, 1.0);
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let x = CluDecomposition::new(&a).unwrap().solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn determinant_of_diagonal() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = Complex::new(2.0, 0.0);
        a[(1, 1)] = Complex::new(0.0, 1.0);
        a[(2, 2)] = Complex::new(1.0, -1.0);
        let det = CluDecomposition::new(&a).unwrap().determinant();
        // 2 * i * (1 - i) = 2i + 2 = 2 + 2i
        assert!((det - Complex::new(2.0, 2.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_detection_and_null_vector() {
        // rank-1 matrix: rows (1, 2), (2, 4)
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 0.0);
        a[(0, 1)] = Complex::new(2.0, 0.0);
        a[(1, 0)] = Complex::new(2.0, 0.0);
        a[(1, 1)] = Complex::new(4.0, 0.0);
        assert!(CluDecomposition::new(&a).is_err());
        let lu = CluDecomposition::new_allow_singular(&a).unwrap();
        let x = lu.null_vector().unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(ax.iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn left_null_vector_annihilates_rows() {
        let mut a = CMatrix::zeros(3, 3);
        // Columns 0 and 1 independent, column 2 = column 0 + column 1 -> singular.
        let vals = [[1.0, 2.0, 3.0], [0.5, -1.0, -0.5], [2.0, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = Complex::new(vals[i][j], 0.0);
            }
        }
        // Make the matrix row-rank deficient instead: set row 2 = row0 + row1.
        for j in 0..3 {
            a[(2, j)] = a[(0, j)] + a[(1, j)];
        }
        let u = left_null_vector_of(&a).unwrap();
        let ua = a.vecmat(&u).unwrap();
        assert!(ua.iter().all(|z| z.abs() < 1e-12), "u A = {ua:?}");
    }

    #[test]
    fn left_null_vector_method_matches_helper() {
        let mut a = CMatrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                a[(i, j)] = Complex::new(1.0, (i + j) as f64);
            }
        }
        // Make singular: row 1 = 2 * row 0.
        for j in 0..2 {
            a[(1, j)] = a[(0, j)] * 2.0;
        }
        let via_method =
            CluDecomposition::new_allow_singular(&a).unwrap().left_null_vector().unwrap();
        let ua = a.vecmat(&via_method).unwrap();
        assert!(ua.iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = CMatrix::identity(2);
        let lu = CluDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[Complex::ONE]).is_err());
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = CMatrix::zeros(0, 0);
        assert!(CluDecomposition::new_allow_singular(&a).is_err());
    }
}
