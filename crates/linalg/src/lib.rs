//! Dense real and complex linear algebra for the `unreliable-servers` workspace.
//!
//! The crates in this workspace reproduce the queueing analysis of Palmer & Mitrani,
//! *Empirical and Analytical Evaluation of Systems with Multiple Unreliable Servers*
//! (DSN 2006).  The spectral-expansion solution of a Markov-modulated queue needs a
//! small but complete set of dense numerical kernels:
//!
//! * real matrices with LU factorisation, determinants, inverses and linear solves
//!   ([`Matrix`], [`LuDecomposition`]),
//! * complex matrices and complex LU factorisation with null-space extraction
//!   ([`CMatrix`], [`CluDecomposition`]),
//! * eigenvalues of general real matrices via balancing, Householder Hessenberg
//!   reduction and the Francis implicit double-shift QR iteration ([`eigenvalues`]),
//! * eigenvalues of quadratic matrix polynomials `Q0 + Q1 z + Q2 z^2` through
//!   companion linearisation ([`QuadraticEigenProblem`]),
//! * complex and real block-tridiagonal solvers used for the boundary equations of
//!   quasi-birth-death processes ([`BlockTridiagonal`], [`RealBlockTridiagonal`]),
//! * packed band storage with banded matvec/gemm and banded LU, real and complex
//!   ([`BandedMatrix`]/[`BandedLu`], [`CBandedMatrix`]/[`CBandedLu`]), bit-identical
//!   to the dense kernels on the same nonzero pattern, with the
//!   [`banded_profitable`] crossover rule deciding when solvers route through them,
//! * allocation-free in-place kernels — `gemm`-style multiply-accumulate
//!   ([`Matrix::gemm`], [`CMatrix::gemm`]), blocked LU with the `solve_*_into`
//!   family — backed by a reusable [`Workspace`] scratch-buffer pool so the
//!   solvers' hot loops allocate nothing,
//! * an intra-solve worker pool ([`ThreadPool`], module [`parallel`]): the `*_with`
//!   kernel variants ([`Matrix::gemm_with`], [`LuDecomposition::from_matrix_with`],
//!   [`LuDecomposition::solve_right_matrix_into_with`], …) partition independent
//!   output rows across workers while keeping every per-element accumulation order
//!   fixed, so results are **bit-identical at any thread count**.
//!
//! Everything is implemented from scratch on top of `std`; no external BLAS/LAPACK
//! bindings are used, which keeps the workspace buildable in fully offline
//! environments.
//!
//! # Paper map
//!
//! This crate is the numerical engine behind the paper's Section 3: the quadratic
//! eigenproblem of the characteristic polynomial `Q(z)` (§3.1, spectral expansion)
//! lives in [`QuadraticEigenProblem`], and the boundary balance equations are solved
//! through [`BlockTridiagonal`].  Everything here is immutable once constructed and
//! safe to share across the worker threads of `urs_core`'s parallel sweeps.
//!
//! | API | Role in the reproduction |
//! |---|---|
//! | [`Matrix::gemm`] / [`CMatrix::gemm`] | tiled multiply-accumulate behind every solver product (§3.1 matrices are sparse bands — zero rows are skipped) |
//! | [`LuDecomposition`] / [`CluDecomposition`] | blocked LU with partial pivoting; `solve_into` / `solve_matrix_into` / `solve_right_matrix_into` replace every explicit inverse |
//! | [`Workspace`] | scratch-buffer pool so the `R`-matrix logarithmic reduction and the boundary elimination allocate nothing per iteration |
//! | [`ThreadPool`] + the `*_with` kernels | row-banded parallel gemm, trailing-update LU and right-solves; panels and pivoting stay serial, bands are disjoint, accumulation order is fixed — the pool changes wall time, never bits (pinned by the `parallel_equivalence` and `properties` suites) |
//! | [`BandedMatrix`]/[`BandedLu`], [`CBandedMatrix`]/[`CBandedLu`] | packed storage for the QBD generator bands (§3's `Q(z)` blocks have bandwidth `N + 1` inside `s = (N+1)(N+2)/2` modes); banded matvec/gemm/LU/solves bit-identical to dense on the same pattern, gated by [`banded_profitable`] |
//! | [`QuadraticEigenProblem::left_eigenvector`] | eigenvector extraction by shifted inverse iteration on one banded LU of `Q(z)ᵀ` per eigenvalue (dense null-space fallback), replacing the `O(s⁴)` per-eigenvalue Gaussian null-space sweep |
//! | [`RealBlockTridiagonal`] | all-real boundary elimination for the matrix-geometric method (`B = λI` keeps the boundary blocks real) |
//!
//! # Example
//!
//! ```
//! use urs_linalg::{Matrix, eigenvalues};
//!
//! # fn main() -> Result<(), urs_linalg::LinalgError> {
//! // Companion matrix of z^2 - 3z + 2 = (z - 1)(z - 2).
//! let m = Matrix::from_rows(&[&[0.0, 1.0][..], &[-2.0, 3.0][..]])?;
//! let mut eig: Vec<f64> = eigenvalues(&m)?.into_iter().map(|z| z.re).collect();
//! eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert!((eig[0] - 1.0).abs() < 1e-12 && (eig[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod banded;
mod blocktri;
mod cbanded;
mod clu;
mod cmatrix;
mod complex;
mod error;
mod lu;
mod matrix;
mod quadratic;
mod workspace;

pub mod eigen;
pub mod parallel;

pub use banded::{BandedLu, BandedMatrix};
pub use blocktri::{BlockTridiagonal, RealBlockTridiagonal};
pub use cbanded::{CBandedLu, CBandedMatrix};
pub use clu::CluDecomposition;
pub use cmatrix::CMatrix;
pub use complex::Complex;
pub use eigen::{eigenvalues, EigenOptions};
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use parallel::{ThreadPool, WorkerPanic};
pub use quadratic::{QuadraticEigenProblem, QuadraticEigenvalue};
pub use workspace::Workspace;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Crossover rule for the structured kernels: `true` when an `n × n` system
/// with `kl` subdiagonals and `ku` superdiagonals is worth routing through the
/// banded [`BandedLu`]/[`CBandedLu`] path instead of the dense one.
///
/// The banded factorisation does `O(n·(kl + ku + kl·min(kl+ku, n−1)))` work
/// against the dense `O(n³/3)`, but the dense kernels are blocked and skip
/// zeros, so the break-even is not at equal flop counts.  Measured with the
/// `kernels-banded` criterion group on QBD-shaped operands (`kl = ku`): at the
/// solver shapes 153×(17,17) and 561×(33,33) the banded path wins every kernel
/// (LU 3.6–7.7×, solves 1.7–2.7×, gemm ~1.2×), while at the boundary shape
/// 153×(38,38) — total bandwidth ≈ `n / 2` — banded gemm is already ~1.8×
/// *slower* even though banded LU still wins.  The gate is therefore set at
/// `kl + ku + 1 ≤ n / 2`, the tightest rule that keeps every routed kernel a
/// win — comfortably satisfied by every generator block the solvers produce
/// (`kl = ku = N + 1` against `n = (N+1)(N+2)/2`).
#[must_use]
pub fn banded_profitable(n: usize, kl: usize, ku: usize) -> bool {
    let bandwidth = kl + ku + 1;
    n >= 8 && bandwidth <= n / 2
}
