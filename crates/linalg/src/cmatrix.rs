//! Dense, row-major complex matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::clu::CluDecomposition;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// A dense, row-major matrix of [`Complex`] values.
///
/// Complex matrices appear in the spectral-expansion solver when the characteristic
/// matrix polynomial `Q(z)` is evaluated at a complex eigenvalue and its null space is
/// extracted.  The API mirrors [`Matrix`] but only carries the operations actually
/// needed by the solvers.
///
/// # Example
///
/// ```
/// use urs_linalg::{CMatrix, Complex};
///
/// let mut m = CMatrix::zeros(2, 2);
/// m[(0, 0)] = Complex::new(1.0, 1.0);
/// m[(1, 1)] = Complex::new(0.0, -2.0);
/// assert_eq!(m.trace().unwrap(), Complex::new(1.0, -1.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a complex matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix { rows, cols, data: vec![Complex::ZERO; rows * cols] }
    }

    /// Creates the `n × n` complex identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a complex matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Embeds a real matrix as a complex matrix with zero imaginary parts.
    pub fn from_real(a: &Matrix) -> Self {
        CMatrix::from_fn(a.rows(), a.cols(), |i, j| Complex::from_real(a[(i, j)]))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Real parts of all entries as a real matrix.
    pub fn real_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// Largest absolute value of any imaginary part; useful for asserting that a result
    /// which must be real actually is.
    pub fn max_imag_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.im.abs()))
    }

    /// Maximum modulus of any entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }

    /// Sum of the diagonal entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<Complex> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex matrix multiplication",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let t = aik * rhs[(k, j)];
                    out[(i, j)] += t;
                }
            }
        }
        Ok(out)
    }

    /// Row-vector–matrix product `v * self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[Complex]) -> Result<Vec<Complex>> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex vector-matrix product",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![Complex::ZERO; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == Complex::ZERO {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Result<Vec<Complex>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex matrix-vector product",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum()).collect())
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// See [`CluDecomposition::new`].
    pub fn lu(&self) -> Result<CluDecomposition> {
        CluDecomposition::new(self)
    }

    /// Determinant via complex LU factorisation (0 for singular matrices).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn determinant(&self) -> Result<Complex> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok(CluDecomposition::new_allow_singular(self)?.determinant())
    }

    /// Entry-wise approximate comparison with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (*a - *b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "complex matrix addition requires equal shapes");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "complex matrix subtraction requires equal shapes");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul<Complex> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * rhs).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = CMatrix::identity(3);
        assert_eq!(id[(1, 1)], Complex::ONE);
        assert_eq!(id[(0, 1)], Complex::ZERO);
        assert_eq!(id.trace().unwrap(), Complex::new(3.0, 0.0));
    }

    #[test]
    fn from_real_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let c = CMatrix::from_real(&a);
        assert_eq!(c.real_part(), a);
        assert_eq!(c.max_imag_abs(), 0.0);
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let mut m = CMatrix::zeros(2, 2);
        m[(0, 1)] = Complex::new(1.0, 2.0);
        let adj = m.adjoint();
        assert_eq!(adj[(1, 0)], Complex::new(1.0, -2.0));
        let t = m.transpose();
        assert_eq!(t[(1, 0)], Complex::new(1.0, 2.0));
    }

    #[test]
    fn matmul_against_hand_computation() {
        let i = Complex::I;
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        a[(0, 1)] = i;
        a[(1, 0)] = -i;
        a[(1, 1)] = Complex::ONE;
        let prod = a.matmul(&a).unwrap();
        // [[1, i], [-i, 1]]^2 = [[2, 2i], [-2i, 2]]
        assert!(prod.approx_eq(
            &CMatrix::from_fn(2, 2, |r, c| match (r, c) {
                (0, 0) | (1, 1) => Complex::new(2.0, 0.0),
                (0, 1) => Complex::new(0.0, 2.0),
                _ => Complex::new(0.0, -2.0),
            }),
            1e-14
        ));
    }

    #[test]
    fn vecmat_and_matvec() {
        let a = CMatrix::from_fn(2, 2, |i, j| Complex::new((i * 2 + j) as f64, 0.0));
        let v = [Complex::ONE, Complex::I];
        let left = a.vecmat(&v).unwrap();
        assert_eq!(left[0], Complex::new(0.0, 2.0));
        assert_eq!(left[1], Complex::new(1.0, 3.0));
        let right = a.matvec(&v).unwrap();
        assert_eq!(right[0], Complex::new(0.0, 1.0));
        assert_eq!(right[1], Complex::new(2.0, 3.0));
        assert!(a.vecmat(&[Complex::ONE]).is_err());
        assert!(a.matvec(&[Complex::ONE]).is_err());
    }

    #[test]
    fn determinant_of_complex_matrix() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(1, 1)] = Complex::new(1.0, -1.0);
        a[(0, 1)] = Complex::new(0.0, 1.0);
        a[(1, 0)] = Complex::new(0.0, 1.0);
        // det = (1+i)(1-i) - (i)(i) = 2 + 1 = 3
        let det = a.determinant().unwrap();
        assert!((det - Complex::new(3.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn arithmetic_operators() {
        let a = CMatrix::identity(2);
        let b = &a + &a;
        assert_eq!(b[(0, 0)], Complex::new(2.0, 0.0));
        let c = &b - &a;
        assert!(c.approx_eq(&a, 0.0));
        let d = &a * Complex::I;
        assert_eq!(d[(1, 1)], Complex::I);
    }

    #[test]
    fn mismatched_multiplication_rejected() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }
}
