//! Dense, row-major complex matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::clu::CluDecomposition;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::{par_band_rows, Matrix};
use crate::parallel::ThreadPool;
use crate::Result;

/// A dense, row-major matrix of [`Complex`] values.
///
/// Complex matrices appear in the spectral-expansion solver when the characteristic
/// matrix polynomial `Q(z)` is evaluated at a complex eigenvalue and its null space is
/// extracted.  The API mirrors [`Matrix`] but only carries the operations actually
/// needed by the solvers.
///
/// # Example
///
/// ```
/// use urs_linalg::{CMatrix, Complex};
///
/// let mut m = CMatrix::zeros(2, 2);
/// m[(0, 0)] = Complex::new(1.0, 1.0);
/// m[(1, 1)] = Complex::new(0.0, -2.0);
/// assert_eq!(m.trace().unwrap(), Complex::new(1.0, -1.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a complex matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix { rows, cols, data: vec![Complex::ZERO; rows * cols] }
    }

    /// Creates the `n × n` complex identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a complex matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Embeds a real matrix as a complex matrix with zero imaginary parts.
    pub fn from_real(a: &Matrix) -> Self {
        let data = a.as_slice().iter().map(|&x| Complex::from_real(x)).collect();
        CMatrix { rows: a.rows(), cols: a.cols(), data }
    }

    /// Overwrites this matrix with the entries of a real matrix (zero imaginary
    /// parts), without reallocating — the allocation-free twin of
    /// [`from_real`](Self::from_real) for [`Workspace`](crate::Workspace)-pooled
    /// buffers.  Together with [`shift_diagonal`](Self::shift_diagonal) this is the
    /// assembly path for resolvent matrices `sI − Q` whose real part `−Q` is fixed
    /// while `s` runs over the nodes of a quadrature rule.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn copy_from_real(&mut self, a: &Matrix) -> Result<()> {
        if self.shape() != (a.rows(), a.cols()) {
            return Err(LinalgError::DimensionMismatch {
                operation: "copy real matrix into complex matrix",
                left: self.shape(),
                right: (a.rows(), a.cols()),
            });
        }
        for (dst, &src) in self.data.iter_mut().zip(a.as_slice()) {
            *dst = Complex::from_real(src);
        }
        Ok(())
    }

    /// Adds `shift` to every diagonal entry in place, turning a matrix `A` into
    /// `A + shift·I` — the `O(n)` step that completes a resolvent assembly after
    /// [`copy_from_real`](Self::copy_from_real).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn shift_diagonal(&mut self, shift: Complex) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        for i in 0..self.rows {
            self.data[i * self.cols + i] += shift;
        }
        Ok(())
    }

    /// Creates a complex matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput(format!(
                "expected {} elements for a {rows}x{cols} complex matrix, found {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(CMatrix { rows, cols, data })
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data buffer (for
    /// [`Workspace`](crate::Workspace) recycling).
    #[inline]
    pub fn into_vec(self) -> Vec<Complex> {
        self.data
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Real parts of all entries as a real matrix.
    pub fn real_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// Largest absolute value of any imaginary part; useful for asserting that a result
    /// which must be real actually is.
    pub fn max_imag_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.im.abs()))
    }

    /// Maximum modulus of any entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }

    /// Sum of the diagonal entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<Complex> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Matrix product `self * rhs`.
    ///
    /// Thin allocating wrapper over the in-place [`gemm`](Self::gemm) kernel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix> {
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        out.gemm(Complex::ONE, self, rhs, Complex::ZERO)?;
        Ok(out)
    }

    /// General multiply-accumulate `self ← alpha·a·b + beta·self`, in place.
    ///
    /// The complex twin of [`Matrix::gemm`]: allocation-free, zero-skipping and tiled
    /// over `k`/`j` so a slab of `b` stays cache-resident.  `beta == 0` overwrites
    /// `self` outright; the `k` accumulation order is ascending regardless of tiling.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] unless
    /// `self.shape() == (a.rows(), b.cols())` and `a.cols() == b.rows()`.
    pub fn gemm(&mut self, alpha: Complex, a: &CMatrix, b: &CMatrix, beta: Complex) -> Result<()> {
        self.gemm_with(alpha, a, b, beta, &ThreadPool::serial())
    }

    /// [`gemm`](Self::gemm) with the output rows partitioned across the workers of
    /// `pool` — the complex twin of [`Matrix::gemm_with`], bit-identical to the
    /// serial kernel at any thread count because each output element's ascending-`k`
    /// accumulation happens entirely within one worker's row band.
    ///
    /// # Errors
    ///
    /// Same as [`gemm`](Self::gemm), plus [`LinalgError::WorkerPanic`] if a worker
    /// panicked.
    pub fn gemm_with(
        &mut self,
        alpha: Complex,
        a: &CMatrix,
        b: &CMatrix,
        beta: Complex,
        pool: &ThreadPool,
    ) -> Result<()> {
        if a.cols != b.rows || self.rows != a.rows || self.cols != b.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex matrix multiply-accumulate (gemm)",
                left: a.shape(),
                right: b.shape(),
            });
        }
        let (m, k, n) = (a.rows, a.cols, b.cols);
        let band_rows = par_band_rows(m, k, n, pool.threads());
        if band_rows >= m {
            cgemm_band(&mut self.data, &a.data, &b.data, alpha, beta, k, n);
            return Ok(());
        }
        pool.par_chunks_mut(&mut self.data, band_rows * n, |band, c_rows| {
            let row0 = band * band_rows;
            let rows = c_rows.len() / n;
            cgemm_band(c_rows, &a.data[row0 * k..(row0 + rows) * k], &b.data, alpha, beta, k, n);
        })?;
        Ok(())
    }

    /// Scales column `j` by the real factor `diag[j]`, in place — right-multiplication
    /// by a real diagonal matrix in `O(n²)`.  Used for products with the diagonal QBD
    /// blocks `B = λI` and `C`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `diag.len() != self.cols()`.
    pub fn scale_columns_real(&mut self, diag: &[f64]) -> Result<()> {
        if diag.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex column scaling by diagonal",
                left: self.shape(),
                right: (diag.len(), diag.len()),
            });
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &d) in row.iter_mut().zip(diag) {
                *x *= d;
            }
        }
        Ok(())
    }

    /// Row-vector–matrix product `v * self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[Complex]) -> Result<Vec<Complex>> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex vector-matrix product",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![Complex::ZERO; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == Complex::ZERO {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Result<Vec<Complex>> {
        let mut out = vec![Complex::ZERO; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Matrix–vector product `out = self * v` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v` or `out` has the wrong length.
    pub fn matvec_into(&self, v: &[Complex], out: &mut [Complex]) -> Result<()> {
        if v.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "complex matrix-vector product",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut sum = Complex::ZERO;
            for (&a, &x) in row.iter().zip(v) {
                sum += a * x;
            }
            *o = sum;
        }
        Ok(())
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// See [`CluDecomposition::new`].
    pub fn lu(&self) -> Result<CluDecomposition> {
        CluDecomposition::new(self)
    }

    /// Determinant via complex LU factorisation (0 for singular matrices).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn determinant(&self) -> Result<Complex> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { rows: self.rows, cols: self.cols });
        }
        Ok(CluDecomposition::new_allow_singular(self)?.determinant())
    }

    /// Entry-wise approximate comparison with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (*a - *b).abs() <= tol)
    }
}

/// The complex tiled multiply-accumulate kernel over one contiguous band of output
/// rows: `C ← α·A_band·B + β·C_band`.  The serial path runs it once over all rows;
/// the parallel path runs it per band — each element's ascending-`k` accumulation is
/// identical either way, so results never depend on the thread count.
// urs-analyze: begin(no_alloc)
fn cgemm_band(
    c: &mut [Complex],
    a: &[Complex],
    b: &[Complex],
    alpha: Complex,
    beta: Complex,
    k: usize,
    n: usize,
) {
    if beta == Complex::ZERO {
        c.fill(Complex::ZERO);
    } else if beta != Complex::ONE {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if alpha == Complex::ZERO || n == 0 {
        return;
    }
    let m = c.len() / n;
    // A complex element is twice the size of a real one; halve the real kernel's
    // tile sizes to keep the resident slab of `b` at the same byte footprint.
    const KB: usize = 32;
    const JB: usize = 128;
    for kk in (0..k).step_by(KB) {
        let k_end = (kk + KB).min(k);
        for jj in (0..n).step_by(JB) {
            let j_end = (jj + JB).min(n);
            for i in 0..m {
                let a_tile = &a[i * k + kk..i * k + k_end];
                let c_row = &mut c[i * n + jj..i * n + j_end];
                // Same crossover gate as the real kernel: a fully dense panel
                // runs branch-free; both branches accumulate the identical
                // ascending-`k` terms, so the gate never changes bits.
                if a_tile.iter().all(|&v| v != Complex::ZERO) {
                    for (offset, &av) in a_tile.iter().enumerate() {
                        let aip = alpha * av;
                        let p = kk + offset;
                        // urs-analyze: allow(slice_index, reason = "panel offsets bounded by the blocking loop limits; fused gemm hot loop")
                        let b_row = &b[p * n + jj..p * n + j_end];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += aip * bv;
                        }
                    }
                } else {
                    for (offset, &av) in a_tile.iter().enumerate() {
                        let aip = alpha * av;
                        if aip == Complex::ZERO {
                            continue;
                        }
                        let p = kk + offset;
                        // urs-analyze: allow(slice_index, reason = "panel offsets bounded by the blocking loop limits; fused gemm hot loop")
                        let b_row = &b[p * n + jj..p * n + j_end];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += aip * bv;
                        }
                    }
                }
            }
        }
    }
}
// urs-analyze: end(no_alloc)

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "complex matrix addition requires equal shapes");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "complex matrix subtraction requires equal shapes");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul<Complex> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * rhs).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = CMatrix::identity(3);
        assert_eq!(id[(1, 1)], Complex::ONE);
        assert_eq!(id[(0, 1)], Complex::ZERO);
        assert_eq!(id.trace().unwrap(), Complex::new(3.0, 0.0));
    }

    #[test]
    fn from_real_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let c = CMatrix::from_real(&a);
        assert_eq!(c.real_part(), a);
        assert_eq!(c.max_imag_abs(), 0.0);
    }

    #[test]
    fn copy_from_real_reuses_storage_and_matches_from_real() {
        let a = Matrix::from_rows(&[&[1.0, -2.0][..], &[0.5, 4.0][..]]).unwrap();
        let mut c = CMatrix::zeros(2, 2);
        c[(0, 0)] = Complex::new(9.0, 9.0); // stale content must be overwritten
        c.copy_from_real(&a).unwrap();
        assert!(c.approx_eq(&CMatrix::from_real(&a), 0.0));
        let wrong = CMatrix::zeros(3, 2);
        assert!(matches!({ wrong }.copy_from_real(&a), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn shift_diagonal_builds_resolvent_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let s = Complex::new(0.5, -1.5);
        let mut c = CMatrix::from_real(&a);
        c.shift_diagonal(s).unwrap();
        assert_eq!(c[(0, 0)], Complex::new(1.0, 0.0) + s);
        assert_eq!(c[(1, 1)], Complex::new(4.0, 0.0) + s);
        assert_eq!(c[(0, 1)], Complex::new(2.0, 0.0));
        assert!(matches!(
            CMatrix::zeros(2, 3).shift_diagonal(s),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let mut m = CMatrix::zeros(2, 2);
        m[(0, 1)] = Complex::new(1.0, 2.0);
        let adj = m.adjoint();
        assert_eq!(adj[(1, 0)], Complex::new(1.0, -2.0));
        let t = m.transpose();
        assert_eq!(t[(1, 0)], Complex::new(1.0, 2.0));
    }

    #[test]
    fn matmul_against_hand_computation() {
        let i = Complex::I;
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        a[(0, 1)] = i;
        a[(1, 0)] = -i;
        a[(1, 1)] = Complex::ONE;
        let prod = a.matmul(&a).unwrap();
        // [[1, i], [-i, 1]]^2 = [[2, 2i], [-2i, 2]]
        assert!(prod.approx_eq(
            &CMatrix::from_fn(2, 2, |r, c| match (r, c) {
                (0, 0) | (1, 1) => Complex::new(2.0, 0.0),
                (0, 1) => Complex::new(0.0, 2.0),
                _ => Complex::new(0.0, -2.0),
            }),
            1e-14
        ));
    }

    #[test]
    fn vecmat_and_matvec() {
        let a = CMatrix::from_fn(2, 2, |i, j| Complex::new((i * 2 + j) as f64, 0.0));
        let v = [Complex::ONE, Complex::I];
        let left = a.vecmat(&v).unwrap();
        assert_eq!(left[0], Complex::new(0.0, 2.0));
        assert_eq!(left[1], Complex::new(1.0, 3.0));
        let right = a.matvec(&v).unwrap();
        assert_eq!(right[0], Complex::new(0.0, 1.0));
        assert_eq!(right[1], Complex::new(2.0, 3.0));
        assert!(a.vecmat(&[Complex::ONE]).is_err());
        assert!(a.matvec(&[Complex::ONE]).is_err());
    }

    #[test]
    fn determinant_of_complex_matrix() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(1, 1)] = Complex::new(1.0, -1.0);
        a[(0, 1)] = Complex::new(0.0, 1.0);
        a[(1, 0)] = Complex::new(0.0, 1.0);
        // det = (1+i)(1-i) - (i)(i) = 2 + 1 = 3
        let det = a.determinant().unwrap();
        assert!((det - Complex::new(3.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn arithmetic_operators() {
        let a = CMatrix::identity(2);
        let b = &a + &a;
        assert_eq!(b[(0, 0)], Complex::new(2.0, 0.0));
        let c = &b - &a;
        assert!(c.approx_eq(&a, 0.0));
        let d = &a * Complex::I;
        assert_eq!(d[(1, 1)], Complex::I);
    }

    #[test]
    fn mismatched_multiplication_rejected() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }
}
