//! Banded complex matrices and banded complex LU — the complex twins of
//! [`banded`](crate::BandedMatrix).
//!
//! The spectral-expansion solver evaluates the characteristic matrix
//! polynomial `Q(z) = Q0 + Q1·z + Q2·z²` at every eigenvalue; the Palmer–
//! Mitrani generator blocks are bands, so `Q(z)` inherits their union
//! bandwidth and its LU costs `O(s·w²)` instead of `O(s³)`.  Storage layout,
//! the no-L-swap `gbtrf` factorisation scheme, and the bit-identity argument
//! (including the `-0.0` caveat) are identical to the real module —
//! see [`crate::BandedMatrix`]'s module docs; this file only swaps the scalar
//! type and mirrors [`CluDecomposition`](crate::CluDecomposition)'s
//! smallest-pivot singularity bookkeeping instead of the real kernel's
//! first-singular-column bookkeeping.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::error::LinalgError;
use crate::workspace::Workspace;
use crate::Result;

/// Pivots below this modulus are treated as exactly zero (same constant as
/// [`CluDecomposition`](crate::CluDecomposition)).
const PIVOT_EPS: f64 = 1e-300;

/// A complex `n × n` matrix with `kl` subdiagonals and `ku` superdiagonals in
/// packed row-major band storage; element `(i, j)` lives at
/// `data[i·w + (j − i + kl)]` with `w = kl + ku + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CBandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    data: Vec<Complex>,
}

impl CBandedMatrix {
    /// Creates an `n × n` banded matrix of zeros with the given bandwidths
    /// (clamped to `n.saturating_sub(1)`).
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let cap = n.saturating_sub(1);
        let (kl, ku) = (kl.min(cap), ku.min(cap));
        CBandedMatrix { n, kl, ku, data: vec![Complex::ZERO; n * (kl + ku + 1)] }
    }

    /// Creates a banded matrix by evaluating `f(i, j)` at every in-band
    /// position; out-of-band elements are zero.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(
        n: usize,
        kl: usize,
        ku: usize,
        mut f: F,
    ) -> Self {
        let mut m = Self::zeros(n, kl, ku);
        let (kl, ku, w) = (m.kl, m.ku, m.width());
        for i in 0..n {
            for j in i.saturating_sub(kl)..(i + ku + 1).min(n) {
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                m.data[i * w + (j + kl - i)] = f(i, j);
            }
        }
        m
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of subdiagonals.
    #[inline]
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Number of superdiagonals.
    #[inline]
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    #[inline]
    fn width(&self) -> usize {
        self.kl + self.ku + 1
    }

    /// Element access; out-of-band positions read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds for dim {}", self.n);
        if j + self.kl < i || j > i + self.ku {
            Complex::ZERO
        } else {
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            self.data[i * self.width() + (j + self.kl - i)]
        }
    }

    /// Expands to a dense complex matrix (for tests and dense fallbacks).
    pub fn to_dense(&self) -> CMatrix {
        CMatrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Maximum modulus of any in-band element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }

    /// Banded matrix–vector product `out = self · v`, allocation-free; the
    /// in-band terms accumulate in ascending column order exactly as the dense
    /// [`CMatrix::matvec`] does.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on wrong lengths.
    pub fn matvec_into(&self, v: &[Complex], out: &mut [Complex]) -> Result<()> {
        let n = self.n;
        if v.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded complex matrix-vector product",
                left: (n, n),
                right: (v.len().max(out.len()), 1),
            });
        }
        let w = self.width();
        // urs-analyze: begin(no_alloc)
        for (i, oi) in out.iter_mut().enumerate() {
            let j0 = i.saturating_sub(self.kl);
            let j1 = (i + self.ku + 1).min(n);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let row = &self.data[i * w + (j0 + self.kl - i)..i * w + (j1 - 1 + self.kl - i) + 1];
            let mut sum = Complex::ZERO;
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            for (a, &b) in row.iter().zip(&v[j0..j1]) {
                sum += *a * b;
            }
            *oi = sum;
        }
        // urs-analyze: end(no_alloc)
        Ok(())
    }

    /// Banded complex LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CBandedLu::new`].
    pub fn lu(&self) -> Result<CBandedLu> {
        CBandedLu::new(self)
    }
}

/// A banded complex LU factorisation `P·A = L·U` with partial pivoting, stored
/// packed with `gbtrf`-style deferred interchanges (see [`crate::BandedLu`]).
///
/// Singularity bookkeeping mirrors [`CluDecomposition`](crate::CluDecomposition):
/// the smallest pivot modulus and its index are tracked across the whole
/// elimination, [`smallest_pivot`](Self::smallest_pivot) exposes it, and the
/// near-singular factor remains usable through
/// [`solve_regularized_into`](Self::solve_regularized_into) — the inverse-
/// iteration kernel of the spectral solver.
#[derive(Debug, Clone)]
pub struct CBandedLu {
    n: usize,
    kl: usize,
    bw: usize,
    data: Vec<Complex>,
    piv: Vec<usize>,
    perm_sign: f64,
    min_pivot: (usize, f64),
}

impl CBandedLu {
    /// Factorises a banded complex matrix, rejecting singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] for empty or non-finite input and
    /// [`LinalgError::Singular`] (reporting the smallest pivot's index, as the
    /// dense complex factorisation does) when any pivot underflows.
    pub fn new(a: &CBandedMatrix) -> Result<Self> {
        let lu = Self::factor_allow_singular(a, None)?;
        if lu.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: lu.min_pivot.0 });
        }
        Ok(lu)
    }

    /// Factorises a banded complex matrix, tolerating singular input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] for empty or non-finite input.
    pub fn new_allow_singular(a: &CBandedMatrix) -> Result<Self> {
        Self::factor_allow_singular(a, None)
    }

    /// [`new_allow_singular`](Self::new_allow_singular) with the working
    /// storage borrowed from `ws`; return it with [`recycle`](Self::recycle).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new_allow_singular`](Self::new_allow_singular).
    pub fn new_allow_singular_pooled(a: &CBandedMatrix, ws: &mut Workspace) -> Result<Self> {
        Self::factor_allow_singular(a, Some(ws))
    }

    /// Returns the working storage to `ws` for reuse.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.release_complex_buffer(self.data);
    }

    fn factor_allow_singular(a: &CBandedMatrix, ws: Option<&mut Workspace>) -> Result<Self> {
        let n = a.n;
        if n == 0 {
            return Err(LinalgError::InvalidInput("matrix must be non-empty".into()));
        }
        if !a.data.iter().all(|z| z.is_finite()) {
            return Err(LinalgError::InvalidInput("matrix contains non-finite values".into()));
        }
        let kl = a.kl;
        let bw = (a.kl + a.ku).min(n - 1);
        let w = kl + bw + 1;
        let aw = a.width();
        let mut data = match ws {
            Some(ws) => ws.complex_buffer(n * w),
            None => vec![Complex::ZERO; n * w],
        };
        for i in 0..n {
            let j0 = i.saturating_sub(a.kl);
            let j1 = (i + a.ku + 1).min(n);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            data[i * w + (j0 + kl - i)..i * w + (j1 - 1 + kl - i) + 1].copy_from_slice(
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                &a.data[i * aw + (j0 + a.kl - i)..i * aw + (j1 - 1 + a.kl - i) + 1],
            );
        }
        let mut piv = Vec::with_capacity(n);
        let mut perm_sign = 1.0;
        let mut min_pivot = (0usize, f64::INFINITY);
        let d = data.as_mut_slice();

        // urs-analyze: begin(no_alloc)
        for k in 0..n {
            let bl = kl.min(n - 1 - k);
            let u_extent = bw.min(n - 1 - k);
            let mut pivot_t = 0usize;
            // urs-analyze: allow(slice_index, reason = "row k, diagonal slot kl: in range because every working row has width kl + bw + 1")
            let mut pivot_val = d[k * w + kl].abs();
            for t in 1..=bl {
                // urs-analyze: allow(slice_index, reason = "row k+t ≤ n−1 and column offset kl − t ≥ 0 by the loop bound bl = min(kl, n−1−k)")
                let v = d[(k + t) * w + kl - t].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_t = t;
                }
            }
            piv.push(k + pivot_t);
            if pivot_t != 0 {
                let t = pivot_t;
                // urs-analyze: allow(slice_index, reason = "rows k and k+t are distinct and in range; split at the later row start")
                let (head, tail) = d.split_at_mut((k + t) * w);
                // urs-analyze: allow(slice_index, reason = "U-part of row k: offsets kl..=kl+u_extent fit the working width kl + bw + 1")
                let row_k = &mut head[k * w + kl..k * w + kl + u_extent + 1];
                // urs-analyze: allow(slice_index, reason = "U-part of row k+t: offsets kl−t..=kl−t+u_extent; kl ≥ t and u_extent ≤ bw keep both ends in the row")
                let row_t = &mut tail[kl - t..kl - t + u_extent + 1];
                row_k.swap_with_slice(row_t);
                perm_sign = -perm_sign;
            }
            if pivot_val < min_pivot.1 {
                min_pivot = (k, pivot_val);
            }
            if pivot_val < PIVOT_EPS {
                continue;
            }
            if bl == 0 {
                continue;
            }
            // urs-analyze: allow(slice_index, reason = "diagonal slot of row k, in range as above")
            let pivot = d[k * w + kl];
            // urs-analyze: allow(slice_index, reason = "split between row k and row k+1; both sides non-empty because bl ≥ 1")
            let (upper, lower) = d.split_at_mut((k + 1) * w);
            // urs-analyze: allow(slice_index, reason = "pivot row U-part beyond the diagonal: offsets kl+1..=kl+u_extent within the working width")
            let u_row = &upper[k * w + kl + 1..k * w + kl + u_extent + 1];
            for (t, row) in lower.chunks_exact_mut(w).take(bl).enumerate() {
                let off = kl - (t + 1);
                // urs-analyze: allow(slice_index, reason = "column-k slot of row k+t+1 at offset kl−(t+1) ≥ 0 since t+1 ≤ bl ≤ kl")
                let factor = row[off] / pivot;
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                row[off] = factor;
                if factor != Complex::ZERO {
                    // urs-analyze: allow(slice_index, reason = "update window off+1..=off+u_extent stays within the row: off + u_extent ≤ kl + bw")
                    for (x, &u) in row[off + 1..off + u_extent + 1].iter_mut().zip(u_row) {
                        *x -= factor * u;
                    }
                }
            }
        }
        // urs-analyze: end(no_alloc)
        Ok(CBandedLu { n, kl, bw, data, piv, perm_sign, min_pivot })
    }

    /// Dimension of the factorised matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Modulus of the smallest pivot encountered; a small value indicates
    /// (near) singularity.
    pub fn smallest_pivot(&self) -> f64 {
        self.min_pivot.1
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> Complex {
        if self.min_pivot.1 < PIVOT_EPS {
            return Complex::ZERO;
        }
        let w = self.kl + self.bw + 1;
        let mut det = Complex::from_real(self.perm_sign);
        for i in 0..self.n {
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            det *= self.data[i * w + self.kl];
        }
        det
    }

    fn ensure_regular(&self) -> Result<()> {
        if self.min_pivot.1 < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: self.min_pivot.0 });
        }
        Ok(())
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation), with
    /// the recorded interchanges replayed in elimination order — bit-identical
    /// to the dense [`CluDecomposition::solve_into`](crate::CluDecomposition::solve_into)
    /// under the module's `-0.0` caveat.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular, or
    /// [`LinalgError::DimensionMismatch`] on wrong lengths.
    pub fn solve_into(&self, b: &[Complex], x: &mut [Complex]) -> Result<()> {
        self.ensure_regular()?;
        self.check_lengths(b.len(), x.len())?;
        self.substitute(b, x, None);
        Ok(())
    }

    /// Solves `(A with tiny pivots floored) x = b` — the inverse-iteration
    /// kernel: near-singular `U` diagonals below `floor` in modulus are
    /// replaced by the real value `floor`, so the solve amplifies the
    /// null-space direction instead of overflowing.  Deterministic: the floor
    /// is applied per-element by value, independent of iteration count or
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on wrong lengths or
    /// [`LinalgError::InvalidInput`] for a non-positive floor.
    pub fn solve_regularized_into(
        &self,
        b: &[Complex],
        x: &mut [Complex],
        floor: f64,
    ) -> Result<()> {
        if floor.is_nan() || floor <= 0.0 {
            return Err(LinalgError::InvalidInput("regularization floor must be positive".into()));
        }
        self.check_lengths(b.len(), x.len())?;
        self.substitute(b, x, Some(floor));
        Ok(())
    }

    fn check_lengths(&self, b: usize, x: usize) -> Result<()> {
        if b != self.n || x != self.n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded complex LU solve",
                left: (self.n, self.n),
                right: (b.max(x), 1),
            });
        }
        Ok(())
    }

    /// Forward/backward substitution shared by the exact and regularized
    /// solves; `floor` is `None` for the exact path.
    fn substitute(&self, b: &[Complex], x: &mut [Complex], floor: Option<f64>) {
        let n = self.n;
        let w = self.kl + self.bw + 1;
        let d = &self.data;
        x.copy_from_slice(b);
        // urs-analyze: begin(no_alloc)
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                x.swap(k, p);
            }
            let bl = self.kl.min(n - 1 - k);
            // urs-analyze: allow(slice_index, reason = "x[k] read after the interchange; k < n by the loop bound")
            let xk = x[k];
            for t in 1..=bl {
                // urs-analyze: allow(slice_index, reason = "multiplier of row k+t for column k at packed offset kl − t, in range as in the factorisation")
                let l = d[(k + t) * w + self.kl - t];
                // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
                x[k + t] -= l * xk;
            }
        }
        for i in (0..n).rev() {
            let u_extent = self.bw.min(n - 1 - i);
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let row = &d[i * w + self.kl..i * w + self.kl + u_extent + 1];
            // urs-analyze: allow(slice_index, reason = "x[i] with i < n; the zip below bounds the U traversal to u_extent terms")
            let mut sum = x[i];
            // urs-analyze: allow(slice_index, reason = "x[i+1..i+1+u_extent] is in range because i + u_extent ≤ n − 1")
            for (u, &xj) in row[1..].iter().zip(x[i + 1..].iter()) {
                sum -= *u * xj;
            }
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            let mut diag = row[0];
            if let Some(f) = floor {
                if diag.abs() < f {
                    diag = Complex::from_real(f);
                }
            }
            // urs-analyze: allow(slice_index, reason = "band offset stays within (kl, ku) validated at construction; hot kernel path")
            x[i] = sum / diag;
        }
        // urs-analyze: end(no_alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clu::CluDecomposition;

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }
    }

    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> CBandedMatrix {
        let mut next = rng(seed);
        CBandedMatrix::from_fn(n, kl, ku, |i, j| {
            let z = Complex::new(next(), next());
            if i == j {
                z + Complex::from_real(4.0)
            } else {
                z
            }
        })
    }

    #[test]
    fn matvec_matches_dense_bitwise() {
        for &(n, kl, ku) in &[(1usize, 0usize, 0usize), (6, 0, 2), (6, 2, 0), (9, 3, 2)] {
            let a = random_banded(n, kl, ku, 13 + n as u64);
            let dense = a.to_dense();
            let mut next = rng(21);
            let v: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let mut y = vec![Complex::ZERO; n];
            a.matvec_into(&v, &mut y).unwrap();
            let yd = dense.matvec(&v).unwrap();
            for (b, d) in y.iter().zip(&yd) {
                assert_eq!(b.re.to_bits(), d.re.to_bits());
                assert_eq!(b.im.to_bits(), d.im.to_bits());
            }
        }
    }

    #[test]
    fn factor_and_solve_match_dense_bitwise() {
        for &(n, kl, ku) in &[(1usize, 0usize, 0usize), (5, 1, 1), (8, 0, 3), (8, 3, 0), (11, 2, 4)]
        {
            let a = random_banded(n, kl, ku, 41 + 5 * n as u64 + kl as u64);
            let dense = a.to_dense();
            let blu = a.lu().unwrap();
            let dlu = CluDecomposition::new(&dense).unwrap();
            let det_b = blu.determinant();
            let det_d = dlu.determinant();
            assert_eq!(det_b.re.to_bits(), det_d.re.to_bits());
            assert_eq!(det_b.im.to_bits(), det_d.im.to_bits());
            let mut next = rng(3);
            let b: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let mut xb = vec![Complex::ZERO; n];
            let mut xd = vec![Complex::ZERO; n];
            blu.solve_into(&b, &mut xb).unwrap();
            dlu.solve_into(&b, &mut xd).unwrap();
            for (p, q) in xb.iter().zip(&xd) {
                assert_eq!(p.re.to_bits(), q.re.to_bits(), "n={n} kl={kl} ku={ku}");
                assert_eq!(p.im.to_bits(), q.im.to_bits(), "n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn singular_semantics_match_dense() {
        // Row 1 = 2 × row 0 inside a tridiagonal pattern.
        let mut a = CBandedMatrix::zeros(3, 1, 1);
        let vals = [
            (0usize, 0usize, Complex::new(1.0, 0.5)),
            (0, 1, Complex::new(2.0, 0.0)),
            (1, 0, Complex::new(2.0, 1.0)),
            (1, 1, Complex::new(4.0, 0.0)),
            (2, 2, Complex::ONE),
        ];
        for &(i, j, z) in &vals {
            let w = a.width();
            let kl = a.kl;
            a.data[i * w + (j + kl - i)] = z;
        }
        let dense = a.to_dense();
        let db = CBandedLu::new(&a).unwrap_err();
        let dd = CluDecomposition::new(&dense).unwrap_err();
        match (db, dd) {
            (LinalgError::Singular { pivot: p }, LinalgError::Singular { pivot: q }) => {
                assert_eq!(p, q)
            }
            other => panic!("expected Singular twins, got {other:?}"),
        }
        let blu = CBandedLu::new_allow_singular(&a).unwrap();
        let dlu = CluDecomposition::new_allow_singular(&dense).unwrap();
        assert_eq!(blu.smallest_pivot().to_bits(), dlu.smallest_pivot().to_bits());
        assert_eq!(blu.determinant(), Complex::ZERO);
    }

    #[test]
    fn regularized_solve_recovers_null_direction() {
        // Rank-deficient tridiagonal: row 2 = row 0 (disjoint supports avoided
        // by keeping it genuinely near-singular instead: diag entry ~1e-14).
        let n = 5;
        let mut a = random_banded(n, 1, 1, 77);
        let w = a.width();
        let kl = a.kl;
        a.data[2 * w + kl] = Complex::new(1e-14, 0.0);
        // Knock out the off-diagonals of row 2 so e_2 is nearly a null vector.
        a.data[2 * w + kl - 1] = Complex::ZERO;
        a.data[2 * w + kl + 1] = Complex::ZERO;
        let lu = CBandedLu::new_allow_singular(&a).unwrap();
        assert!(lu.smallest_pivot() < 1e-10);
        let ones = vec![Complex::ONE; n];
        let mut x = vec![Complex::ZERO; n];
        lu.solve_regularized_into(&ones, &mut x, 1e-12).unwrap();
        let max = x.iter().fold(0.0_f64, |m, z| m.max(z.abs()));
        // The solution is dominated by the near-null direction.
        assert!(max > 1e6, "max = {max}");
        assert!(x.iter().all(|z| z.is_finite()));
        assert!(lu.solve_regularized_into(&ones, &mut x, 0.0).is_err());
    }

    #[test]
    fn pooled_factorisation_recycles_storage() {
        let mut ws = Workspace::new();
        let a = random_banded(6, 2, 1, 19);
        let lu = CBandedLu::new_allow_singular_pooled(&a, &mut ws).unwrap();
        let b: Vec<Complex> = (0..6).map(|i| Complex::from_real(i as f64 + 1.0)).collect();
        let mut x = vec![Complex::ZERO; 6];
        lu.solve_into(&b, &mut x).unwrap();
        let mut xd = vec![Complex::ZERO; 6];
        a.lu().unwrap().solve_into(&b, &mut xd).unwrap();
        for (p, q) in x.iter().zip(&xd) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
        }
        lu.recycle(&mut ws);
        assert_eq!(ws.pooled(), 1);
    }
}
