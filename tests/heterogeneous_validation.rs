//! Validation of the heterogeneous-class analytic model against the discrete-event
//! simulator at paper-scale fleet size (N = 10).
//!
//! The paper validates its homogeneous model by simulation (Section 5); the
//! heterogeneous extension is validated the same way: the spectral-expansion solution
//! of the product-mode-space model must fall inside the simulator's 95% confidence
//! interval, with the simulator dispatching jobs fastest-first exactly as the
//! class-aware QBD generator assumes.

use unreliable_servers::core::{
    QueueSolver, ServerClass, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};
use unreliable_servers::sim::{BreakdownQueueSimulation, Replications, SimulationConfig};

/// Fast-but-fragile class: µ = 1.5, mean operative period 20, mean repair 1.
fn fast_class(count: usize) -> ServerClass {
    ServerClass::new(count, 1.5, ServerLifecycle::exponential(1.0 / 20.0, 1.0).unwrap()).unwrap()
}

/// Steady class: µ = 1.0, mean operative period 50, mean repair 2.
fn steady_class(count: usize) -> ServerClass {
    ServerClass::new(count, 1.0, ServerLifecycle::exponential(1.0 / 50.0, 0.5).unwrap()).unwrap()
}

/// Builds the simulator configuration from the *same* `ServerClass` objects the
/// analytic side solves, so the two models cannot drift apart.
fn sim_config_for(config: &SystemConfig, warmup: f64, horizon: f64) -> SimulationConfig {
    let mut builder = SimulationConfig::heterogeneous(config.arrival_rate());
    for class in config.classes() {
        builder = builder.class(
            class.count(),
            class.service_rate(),
            class.lifecycle().operative().clone(),
            class.lifecycle().inoperative().clone(),
        );
    }
    builder.warmup(warmup).horizon(horizon).build().unwrap()
}

#[test]
fn mixed_fleet_at_paper_scale_matches_the_simulator() {
    let lambda = 8.0;
    let config = SystemConfig::heterogeneous(lambda, vec![steady_class(6), fast_class(4)]).unwrap();
    assert_eq!(config.servers(), 10);
    assert!(config.is_stable());
    // Exponential lifecycles keep the product mode space small: 7 × 5 = 35 modes.
    assert_eq!(config.environment_states(), 35);

    let analytic = SpectralExpansionSolver::default().solve(&config).unwrap();

    let sim_config = sim_config_for(&config, 10_000.0, 120_000.0);
    let summary = Replications::new(8, 42).run(&BreakdownQueueSimulation::new(sim_config)).unwrap();

    let l = analytic.mean_queue_length();
    assert!(
        summary.mean_queue_length.contains(l),
        "analytic L = {l} outside simulated 95% CI [{}, {}]",
        summary.mean_queue_length.lower(),
        summary.mean_queue_length.upper()
    );
    // Little's law connects the response time to the same model.  The simulated W
    // carries a small censoring bias (only jobs *completed* before the horizon are
    // recorded, and long jobs are the ones still in flight), so its razor-thin CI can
    // exclude an analytic value it agrees with to a fraction of a percent — bound the
    // relative error instead.
    let w = analytic.mean_response_time();
    assert!(
        (summary.mean_response_time.mean - w).abs() / w < 0.005,
        "analytic W = {w} more than 0.5% from simulated mean {}",
        summary.mean_response_time.mean
    );
    // The environment is queue-independent: the average number of operative servers
    // must match Σ_c N_c·a_c closely.
    let expected_operative = config.effective_servers();
    assert!(
        (summary.mean_operative_servers.mean - expected_operative).abs() / expected_operative
            < 0.01,
        "operative servers {} vs expected {expected_operative}",
        summary.mean_operative_servers.mean
    );
}

#[test]
fn equal_rate_split_matches_the_homogeneous_simulation_path() {
    // Splitting the fleet into equal-parameter classes must leave the *analytic*
    // model literally identical; the simulator (different RNG layout) must still land
    // in the same place statistically.
    let lambda = 6.5;
    let homogeneous =
        SystemConfig::new(10, lambda, 1.0, ServerLifecycle::exponential(1.0 / 50.0, 0.5).unwrap())
            .unwrap();
    let split =
        SystemConfig::heterogeneous(lambda, vec![steady_class(7), steady_class(3)]).unwrap();
    assert_eq!(homogeneous, split);
    let l_hom = SpectralExpansionSolver::default().solve(&homogeneous).unwrap().mean_queue_length();
    let l_split = SpectralExpansionSolver::default().solve(&split).unwrap().mean_queue_length();
    assert_eq!(l_hom.to_bits(), l_split.to_bits());

    // Keep the 7+3 split *in the simulator* (the analytic config merges it away):
    // the class machinery itself must not change the statistics.  Derive the
    // parameters from the same ServerClass helpers as the analytic side.
    let mut builder = SimulationConfig::heterogeneous(lambda);
    for class in [steady_class(7), steady_class(3)] {
        builder = builder.class(
            class.count(),
            class.service_rate(),
            class.lifecycle().operative().clone(),
            class.lifecycle().inoperative().clone(),
        );
    }
    let sim_config = builder.warmup(10_000.0).horizon(120_000.0).build().unwrap();
    let summary = Replications::new(6, 7).run(&BreakdownQueueSimulation::new(sim_config)).unwrap();
    assert!(
        summary.mean_queue_length.contains(l_hom),
        "analytic L = {l_hom} outside simulated CI [{}, {}]",
        summary.mean_queue_length.lower(),
        summary.mean_queue_length.upper()
    );
}
