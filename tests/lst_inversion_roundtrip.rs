//! Property-based round-trip validation of the Laplace-transform inversion.
//!
//! The response-time distribution of `urs_core::response` is produced by numerically
//! inverting a Laplace–Stieltjes transform, so the inverter itself must be trusted
//! before any queueing result built on it can be.  These tests feed both inversion
//! methods (Euler summation and the fixed Talbot contour) the *analytic* LSTs of
//! distributions whose CDFs are known in closed form — exponential, hyperexponential
//! and Erlang mixtures with randomised parameters — and require the inverted values
//! to reproduce the exact CDFs pointwise.  Because the two quadratures share no
//! machinery beyond complex arithmetic, their joint agreement with the closed forms
//! also certifies the runtime Euler-vs-Talbot check used by `ResponseAnalysis`.

use proptest::prelude::*;
use unreliable_servers::core::{invert_lst_cdf, InversionMethod, InversionOptions};
use unreliable_servers::dist::{ContinuousDistribution, Exponential, HyperExponential};
use unreliable_servers::linalg::Complex;

const METHODS: [InversionMethod; 2] =
    [InversionMethod::EulerSummation, InversionMethod::FixedTalbot];

/// Pointwise tolerance for the inverted CDF values.  Euler summation with the default
/// decay parameter carries a discretisation error of roughly `1e-10`; `1e-7` leaves
/// two orders of magnitude of slack for roundoff in the closed forms themselves.
const TOLERANCE: f64 = 1e-7;

/// Closed-form Erlang(k, rate) CDF: `1 − e^{−rt} Σ_{i<k} (rt)^i / i!`.
fn erlang_cdf(k: u32, rate: f64, t: f64) -> f64 {
    let x = rate * t;
    let mut term = 1.0;
    let mut sum = 1.0;
    for i in 1..k {
        term *= x / i as f64;
        sum += term;
    }
    1.0 - (-x).exp() * sum
}

/// Strategy: a hyperexponential with 2–3 phases, normalised random weights and
/// well-separated positive rates.
fn hyperexp_strategy() -> impl Strategy<Value = HyperExponential> {
    (
        proptest::collection::vec(0.05_f64..1.0, 2_usize..4),
        proptest::collection::vec(0.05_f64..10.0, 3),
    )
        .prop_map(|(raw_weights, rates)| {
            let total: f64 = raw_weights.iter().sum();
            let weights: Vec<f64> = raw_weights.iter().map(|w| w / total).collect();
            HyperExponential::new(&weights, &rates[..weights.len()])
                .expect("normalised weights and positive rates are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Exp(rate)` has LST `rate/(s + rate)`; both methods must recover
    /// `1 − e^{−rate·t}` across three decades of rates and a wide span of times.
    #[test]
    fn exponential_round_trips_under_both_methods(
        rate in 0.02_f64..20.0,
        factor in 0.05_f64..4.0,
    ) {
        let dist = Exponential::new(rate).unwrap();
        let t = factor / rate;
        for method in METHODS {
            let inverted = invert_lst_cdf(
                |s| Ok((s + rate).recip() * rate),
                t,
                method,
                &InversionOptions::default(),
            ).unwrap();
            prop_assert!(
                (inverted - dist.cdf(t)).abs() < TOLERANCE,
                "{method:?}: {inverted} vs exact {} at t = {t}", dist.cdf(t)
            );
        }
    }

    /// A hyperexponential has LST `Σ wᵢ rᵢ/(s + rᵢ)` — the same family the paper fits
    /// to the Sun trace, so this is the transform shape the response analysis feeds
    /// the inverter in production.
    #[test]
    fn hyperexponential_round_trips_under_both_methods(
        dist in hyperexp_strategy(),
        factor in 0.05_f64..4.0,
    ) {
        let t = factor * dist.mean();
        let weights = dist.weights().to_vec();
        let rates = dist.rates().to_vec();
        for method in METHODS {
            let inverted = invert_lst_cdf(
                |s| {
                    let mut lst = Complex::ZERO;
                    for (w, r) in weights.iter().zip(&rates) {
                        lst += (s + *r).recip() * (w * r);
                    }
                    Ok(lst)
                },
                t,
                method,
                &InversionOptions::default(),
            ).unwrap();
            prop_assert!(
                (inverted - dist.cdf(t)).abs() < TOLERANCE,
                "{method:?}: {inverted} vs exact {} at t = {t}", dist.cdf(t)
            );
        }
    }

    /// A two-component Erlang mixture `w·Erlang(k₁, r₁) + (1−w)·Erlang(k₂, r₂)` has
    /// LST `w(r₁/(s+r₁))^{k₁} + (1−w)(r₂/(s+r₂))^{k₂}`.  Erlang CDFs have an inflection
    /// away from the origin (unlike everything monotone-density above), so this
    /// exercises the quadratures on a qualitatively different shape.
    #[test]
    fn erlang_mixtures_round_trip_under_both_methods(
        k1 in 1_u32..=6,
        k2 in 1_u32..=6,
        r1 in 0.1_f64..10.0,
        r2 in 0.1_f64..10.0,
        weight in 0.05_f64..0.95,
        factor in 0.05_f64..4.0,
    ) {
        let mean = weight * k1 as f64 / r1 + (1.0 - weight) * k2 as f64 / r2;
        let t = factor * mean;
        let exact = weight * erlang_cdf(k1, r1, t) + (1.0 - weight) * erlang_cdf(k2, r2, t);
        let mut values = [0.0_f64; 2];
        for (slot, method) in values.iter_mut().zip(METHODS) {
            *slot = invert_lst_cdf(
                |s| {
                    let e1 = ((s + r1).recip() * r1).powi(k1);
                    let e2 = ((s + r2).recip() * r2).powi(k2);
                    Ok(e1 * weight + e2 * (1.0 - weight))
                },
                t,
                method,
                &InversionOptions::default(),
            ).unwrap();
            prop_assert!(
                (*slot - exact).abs() < TOLERANCE,
                "{method:?}: {slot} vs exact {exact} at t = {t}"
            );
        }
        // The two independent quadratures also agree with each other, which is the
        // property the runtime certification of `ResponseAnalysis` relies on.
        prop_assert!((values[0] - values[1]).abs() < TOLERANCE);
    }
}
