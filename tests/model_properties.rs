//! Property-based tests of the queueing model and its solvers.

use proptest::prelude::*;
use unreliable_servers::core::{
    MatrixGeometricSolver, QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};
use unreliable_servers::dist::HyperExponential;

/// Strategy: a random but well-posed lifecycle (hyperexponential operative periods with
/// C² between 1 and 10, exponential repairs).
fn lifecycle_strategy() -> impl Strategy<Value = ServerLifecycle> {
    (5.0_f64..60.0, 1.0_f64..10.0, 0.2_f64..20.0).prop_map(|(mean_op, scv, repair_rate)| {
        let operative = HyperExponential::with_mean_and_scv(mean_op, scv)
            .expect("valid mean and scv by construction");
        ServerLifecycle::with_exponential_repair(operative, repair_rate)
            .expect("positive repair rate by construction")
    })
}

/// Strategy: a stable configuration with 1–5 servers.
fn stable_config_strategy() -> impl Strategy<Value = SystemConfig> {
    (lifecycle_strategy(), 1_usize..=5, 0.05_f64..0.95).prop_map(
        |(lifecycle, servers, utilisation)| {
            let base = SystemConfig::new(servers, 1.0, 1.0, lifecycle).expect("valid parameters");
            let arrival = utilisation * base.effective_servers();
            base.with_arrival_rate(arrival.max(1e-3)).expect("positive arrival rate")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every stable configuration is solvable and yields a valid probability
    /// distribution with L consistent with Little's law.
    #[test]
    fn spectral_solution_is_valid_for_random_stable_systems(config in stable_config_strategy()) {
        let solution = SpectralExpansionSolver::default().solve(&config).unwrap();
        // Level probabilities are non-negative and sum (with the tail) to 1.
        let mut total = 0.0;
        for level in 0..60 {
            let p = solution.level_probability(level);
            prop_assert!(p > -1e-9, "negative probability {p} at level {level}");
            total += p;
        }
        total += solution.tail_probability(59);
        prop_assert!((total - 1.0).abs() < 1e-6, "total probability {total}");
        // Little's law.
        prop_assert!(
            (solution.mean_response_time() * config.arrival_rate()
                - solution.mean_queue_length())
            .abs()
                < 1e-9
        );
        // The mean number of busy servers equals the offered load (flow conservation),
        // so L is at least the offered load.
        prop_assert!(solution.mean_queue_length() > config.offered_load() - 1e-6);
    }

    /// The spectral expansion and the matrix-geometric method agree on random systems.
    #[test]
    fn solvers_agree_on_random_stable_systems(config in stable_config_strategy()) {
        let spectral = SpectralExpansionSolver::default().solve(&config).unwrap();
        let mg = MatrixGeometricSolver::default().solve(&config).unwrap();
        let rel = (spectral.mean_queue_length() - mg.mean_queue_length()).abs()
            / spectral.mean_queue_length().max(1e-9);
        prop_assert!(rel < 1e-6, "L disagreement {rel}");
        for level in 0..20 {
            prop_assert!(
                (spectral.level_probability(level) - mg.level_probability(level)).abs() < 1e-7
            );
        }
    }

    /// The mean queue length is monotone in the arrival rate.
    #[test]
    fn queue_length_is_monotone_in_load(
        lifecycle in lifecycle_strategy(),
        servers in 2_usize..=4,
        base_utilisation in 0.1_f64..0.7,
    ) {
        let base = SystemConfig::new(servers, 1.0, 1.0, lifecycle).unwrap();
        let capacity = base.effective_servers();
        let low = base.with_arrival_rate(base_utilisation * capacity).unwrap();
        let high = base.with_arrival_rate((base_utilisation + 0.2) * capacity).unwrap();
        let solver = SpectralExpansionSolver::default();
        let l_low = solver.solve(&low).unwrap().mean_queue_length();
        let l_high = solver.solve(&high).unwrap().mean_queue_length();
        prop_assert!(l_high > l_low - 1e-9, "L({}) = {l_high} < L({}) = {l_low}",
            high.arrival_rate(), low.arrival_rate());
    }

    /// Unstable systems are always rejected with the dedicated error.
    #[test]
    fn unstable_systems_are_rejected(
        lifecycle in lifecycle_strategy(),
        servers in 1_usize..=4,
        excess in 1.05_f64..3.0,
    ) {
        let base = SystemConfig::new(servers, 1.0, 1.0, lifecycle).unwrap();
        let arrival = excess * base.effective_servers();
        let config = base.with_arrival_rate(arrival).unwrap();
        prop_assert!(!config.is_stable());
        prop_assert!(SpectralExpansionSolver::default().solve(&config).is_err());
        prop_assert!(MatrixGeometricSolver::default().solve(&config).is_err());
    }

    /// The environment marginal produced by the solver matches the closed-form
    /// multinomial distribution for random systems.
    #[test]
    fn mode_marginal_matches_product_form(config in stable_config_strategy()) {
        use unreliable_servers::core::ModeSpace;
        let solution = SpectralExpansionSolver::default().solve(&config).unwrap();
        let modes = ModeSpace::new(config.servers(), config.lifecycle()).unwrap();
        let expected = modes.stationary_distribution(config.lifecycle());
        for (got, want) in solution.mode_marginal().iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-5, "marginal {got} vs {want}");
        }
    }
}
