//! Cross-validation of the analytic solution methods.
//!
//! The spectral expansion, the matrix-geometric method and the brute-force truncated
//! CTMC share no numerical machinery beyond the generator matrices, so agreement across
//! all three is strong evidence that each of them is implemented correctly.

use unreliable_servers::core::{
    consistency_violations, MatrixGeometricSolver, QueueSolver, ServerLifecycle,
    SpectralExpansionSolver, SystemConfig, TruncatedCtmcSolver, TruncatedOptions,
};
use unreliable_servers::dist::HyperExponential;

fn configs_under_test() -> Vec<(&'static str, SystemConfig)> {
    let paper = ServerLifecycle::paper_fitted().unwrap();
    let exponential = ServerLifecycle::exponential(0.1, 1.0).unwrap();
    let two_phase_repair = ServerLifecycle::new(
        HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).unwrap(),
        HyperExponential::new(&[0.9303, 0.0697], &[25.0043, 1.6346]).unwrap(),
    );
    vec![
        ("paper lifecycle, light load", SystemConfig::new(3, 1.5, 1.0, paper.clone()).unwrap()),
        ("paper lifecycle, heavy load", SystemConfig::new(4, 3.6, 1.0, paper).unwrap()),
        ("exponential lifecycle", SystemConfig::new(3, 2.0, 1.0, exponential).unwrap()),
        (
            "two-phase repairs (n = 2, m = 2)",
            SystemConfig::new(3, 2.2, 1.0, two_phase_repair).unwrap(),
        ),
    ]
}

#[test]
fn spectral_and_matrix_geometric_agree_on_every_probability() {
    for (name, config) in configs_under_test() {
        let spectral = SpectralExpansionSolver::default().solve(&config).unwrap();
        let matrix_geometric = MatrixGeometricSolver::default().solve(&config).unwrap();
        assert!(
            (spectral.mean_queue_length() - matrix_geometric.mean_queue_length()).abs()
                / spectral.mean_queue_length()
                < 1e-7,
            "{name}: L {} vs {}",
            spectral.mean_queue_length(),
            matrix_geometric.mean_queue_length()
        );
        for level in 0..40 {
            assert!(
                (spectral.level_probability(level) - matrix_geometric.level_probability(level))
                    .abs()
                    < 1e-8,
                "{name}: level {level}"
            );
        }
        for mode in 0..spectral.mode_count() {
            for level in [0, 1, config.servers(), config.servers() + 3] {
                assert!(
                    (spectral.state_probability(mode, level)
                        - matrix_geometric.state_probability(mode, level))
                    .abs()
                        < 1e-8,
                    "{name}: state ({mode}, {level})"
                );
            }
        }
    }
}

#[test]
fn analytic_solutions_match_the_truncated_reference() {
    // Use a light-load configuration so a modest truncation captures essentially all of
    // the probability mass.
    let lifecycle = ServerLifecycle::exponential(0.25, 1.25).unwrap();
    let config = SystemConfig::new(2, 1.0, 1.0, lifecycle).unwrap();
    let spectral = SpectralExpansionSolver::default().solve(&config).unwrap();
    let truncated = TruncatedCtmcSolver::new(TruncatedOptions {
        max_level: 150,
        ..TruncatedOptions::default()
    })
    .solve(&config)
    .unwrap();
    assert!(
        (spectral.mean_queue_length() - truncated.mean_queue_length()).abs() < 1e-4,
        "L {} vs {}",
        spectral.mean_queue_length(),
        truncated.mean_queue_length()
    );
    for level in 0..30 {
        assert!(
            (spectral.level_probability(level) - truncated.level_probability(level)).abs() < 1e-6,
            "level {level}: {} vs {}",
            spectral.level_probability(level),
            truncated.level_probability(level)
        );
    }
}

#[test]
fn every_solver_produces_an_internally_consistent_solution() {
    let lifecycle = ServerLifecycle::paper_fitted().unwrap();
    let config = SystemConfig::new(4, 3.0, 1.0, lifecycle).unwrap();
    let solvers: Vec<Box<dyn QueueSolver>> = vec![
        Box::new(SpectralExpansionSolver::default()),
        Box::new(MatrixGeometricSolver::default()),
        Box::new(TruncatedCtmcSolver::new(TruncatedOptions {
            max_level: 250,
            ..TruncatedOptions::default()
        })),
    ];
    for solver in solvers {
        let solution = solver.solve(&config).unwrap();
        let violations = consistency_violations(solution.as_ref(), 60, 1e-6);
        assert!(violations.is_empty(), "{}: {violations:?}", solver.name());
    }
}

#[test]
fn larger_systems_remain_solvable_and_consistent() {
    // N = 12 with n = 2, m = 1 gives s = 91 operational modes — a realistic size for the
    // paper's figures (which go up to N = 17).
    let lifecycle = ServerLifecycle::paper_fitted().unwrap();
    let config = SystemConfig::new(12, 10.0, 1.0, lifecycle).unwrap();
    let spectral = SpectralExpansionSolver::default().solve(&config).unwrap();
    let mg = MatrixGeometricSolver::default().solve(&config).unwrap();
    assert!(
        (spectral.mean_queue_length() - mg.mean_queue_length()).abs() / mg.mean_queue_length()
            < 1e-6
    );
    assert!(consistency_violations(spectral.as_ref(), 80, 1e-6).is_empty());
}
