//! Validation of the analytic model against the discrete-event simulator.
//!
//! The simulator shares nothing with the analytic solvers except the distribution
//! types, so confidence intervals that cover the exact results provide an end-to-end
//! check of both the model construction and its solution.

use unreliable_servers::core::{
    QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};
use unreliable_servers::dist::{Exponential, HyperExponential};
use unreliable_servers::sim::{BreakdownQueueSimulation, Replications, SimulationConfig};

fn simulate(config: &SystemConfig, horizon: f64, replications: usize, seed: u64) -> (f64, f64) {
    let sim_config = SimulationConfig::builder(config.servers(), config.arrival_rate())
        .service(Exponential::new(config.service_rate()).unwrap())
        .operative(config.lifecycle().operative().clone())
        .inoperative(config.lifecycle().inoperative().clone())
        .warmup(horizon * 0.1)
        .horizon(horizon)
        .build()
        .unwrap();
    let summary = Replications::new(replications, seed)
        .run(&BreakdownQueueSimulation::new(sim_config))
        .unwrap();
    (summary.mean_queue_length.mean, summary.mean_queue_length.half_width)
}

#[test]
fn simulation_confirms_the_exact_solution_for_the_paper_lifecycle() {
    let lifecycle = ServerLifecycle::paper_fitted().unwrap();
    let config = SystemConfig::new(4, 3.0, 1.0, lifecycle).unwrap();
    let exact = SpectralExpansionSolver::default().solve(&config).unwrap().mean_queue_length();
    let (mean, half_width) = simulate(&config, 150_000.0, 8, 11);
    // Allow three half-widths to keep the test robust against the ~1-in-20 misses of a
    // strict 95% interval.
    assert!(
        (mean - exact).abs() < 3.0 * half_width.max(0.05 * exact),
        "simulation {mean} ± {half_width} vs exact {exact}"
    );
}

#[test]
fn simulation_confirms_the_exact_solution_with_hyperexponential_repairs() {
    let lifecycle = ServerLifecycle::new(
        HyperExponential::with_mean_and_scv(20.0, 3.0).unwrap(),
        HyperExponential::new(&[0.9, 0.1], &[2.0, 0.25]).unwrap(),
    );
    let config = SystemConfig::new(3, 1.6, 1.0, lifecycle).unwrap();
    let exact = SpectralExpansionSolver::default().solve(&config).unwrap().mean_queue_length();
    let (mean, half_width) = simulate(&config, 120_000.0, 8, 23);
    assert!(
        (mean - exact).abs() < 3.0 * half_width.max(0.05 * exact),
        "simulation {mean} ± {half_width} vs exact {exact}"
    );
}

#[test]
fn observed_availability_matches_the_analytic_value() {
    let lifecycle = ServerLifecycle::paper_fitted().unwrap();
    let config = SystemConfig::new(6, 4.0, 1.0, lifecycle.clone()).unwrap();
    let sim_config = SimulationConfig::builder(6, 4.0)
        .service(Exponential::new(1.0).unwrap())
        .operative(lifecycle.operative().clone())
        .inoperative(lifecycle.inoperative().clone())
        .warmup(5_000.0)
        .horizon(80_000.0)
        .build()
        .unwrap();
    let result = BreakdownQueueSimulation::new(sim_config).run(5).unwrap();
    let expected = config.effective_servers();
    assert!(
        (result.mean_operative_servers() - expected).abs() < 0.05,
        "observed {} vs expected {expected}",
        result.mean_operative_servers()
    );
    // Throughput must equal the arrival rate for a stable queue (flow conservation).
    assert!((result.throughput() - 4.0).abs() < 0.1, "throughput {}", result.throughput());
}

#[test]
fn variability_effect_is_visible_in_both_model_and_simulation() {
    // Compare exponential vs hyperexponential operative periods with identical means at
    // a moderately high load: both the exact model and the simulation must show the
    // hyperexponential case producing the longer queue (Figure 6's message).
    let mean_operative = 34.62;
    let repair = Exponential::with_mean(5.0).unwrap();
    let build = |scv: f64| {
        let operative = if scv <= 1.0 {
            HyperExponential::exponential(1.0 / mean_operative).unwrap()
        } else {
            HyperExponential::with_mean_and_scv(mean_operative, scv).unwrap()
        };
        let lifecycle =
            ServerLifecycle::new(operative, HyperExponential::exponential(repair.rate()).unwrap());
        SystemConfig::new(3, 2.3, 1.0, lifecycle).unwrap()
    };
    let low = build(1.0);
    let high = build(6.0);
    let exact_low = SpectralExpansionSolver::default().solve(&low).unwrap().mean_queue_length();
    let exact_high = SpectralExpansionSolver::default().solve(&high).unwrap().mean_queue_length();
    assert!(exact_high > exact_low);
    let (sim_low, _) = simulate(&low, 200_000.0, 6, 31);
    let (sim_high, _) = simulate(&high, 200_000.0, 6, 37);
    assert!(
        sim_high > sim_low,
        "simulation should also show the variability penalty: {sim_high} vs {sim_low}"
    );
}
