//! End-to-end test of the full workflow of the paper:
//! trace → cleaning → fitting → model → solution → provisioning decision.

use unreliable_servers::core::{
    CostModel, CostSweep, ProvisioningSweep, QueueSolver, ServerLifecycle, SpectralExpansionSolver,
    SystemConfig,
};
use unreliable_servers::data::{AnalysisOptions, SyntheticTrace, TraceAnalysis};
use unreliable_servers::dist::ContinuousDistribution;

#[test]
fn from_breakdown_trace_to_provisioning_decision() {
    // 1. Empirical phase (Section 2): analyse a synthetic Sun-like trace.
    let trace = SyntheticTrace::paper_like().with_events(60_000).generate(2006).unwrap();
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default()).unwrap();
    assert!(!analysis.operative().exponential_accepted_at_5_percent());
    assert!(analysis.operative().hyperexponential_accepted_at_5_percent());

    // 2. Modelling phase (Section 3): build the queueing model from the *fitted*
    //    distributions rather than the ground truth.
    let operative_fit = analysis.operative().fitted_hyperexponential().clone();
    let repair_rate = 1.0 / analysis.inoperative().moments().mean();
    let lifecycle = ServerLifecycle::with_exponential_repair(operative_fit, repair_rate).unwrap();
    let base = SystemConfig::new(10, 8.0, 1.0, lifecycle).unwrap();
    assert!(base.is_stable());

    // 3. Evaluation phase (Section 4): solve and answer the three questions of the
    //    introduction.
    let solver = SpectralExpansionSolver::default();
    let solution = solver.solve(&base).unwrap();
    assert!(solution.mean_queue_length() > base.offered_load() * 0.9);
    assert!(solution.mean_response_time() > 1.0);

    // "What is the minimum number of servers ensuring W ≤ 1.5?"
    let sweep = ProvisioningSweep::evaluate(&solver, &base, 9..=14).unwrap();
    let min_servers = sweep.min_servers_for_response_time(1.5);
    assert!(min_servers.is_some());
    assert!(min_servers.unwrap() <= 11, "min servers {min_servers:?}");

    // "What is the optimal number of servers under the cost model?"
    let cost = CostSweep::evaluate(&solver, &base, &CostModel::paper_figure5(), 9..=16).unwrap();
    let optimum = cost.optimum().unwrap();
    assert!(
        (10..=14).contains(&optimum.servers),
        "optimal server count {} outside the plausible range",
        optimum.servers
    );
}

#[test]
fn fitted_model_is_close_to_ground_truth_model() {
    // Solving the queue with fitted parameters should give nearly the same performance
    // as solving it with the ground-truth parameters used to generate the trace.
    let generator = SyntheticTrace::paper_like().with_events(100_000);
    let trace = generator.generate(99).unwrap();
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default()).unwrap();

    let truth_lifecycle = ServerLifecycle::with_exponential_repair(
        generator.operative().clone(),
        1.0 / generator.inoperative().mean(),
    )
    .unwrap();
    let fitted_lifecycle = ServerLifecycle::with_exponential_repair(
        analysis.operative().fitted_hyperexponential().clone(),
        1.0 / analysis.inoperative().moments().mean(),
    )
    .unwrap();

    let solver = SpectralExpansionSolver::default();
    let truth = solver
        .solve(&SystemConfig::new(6, 4.5, 1.0, truth_lifecycle).unwrap())
        .unwrap()
        .mean_queue_length();
    let fitted = solver
        .solve(&SystemConfig::new(6, 4.5, 1.0, fitted_lifecycle).unwrap())
        .unwrap()
        .mean_queue_length();
    assert!((truth - fitted).abs() / truth < 0.1, "ground truth L = {truth}, fitted L = {fitted}");
}
