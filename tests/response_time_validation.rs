//! End-to-end validation of the analytic response-time distribution against the
//! discrete-event simulator, in the paper's Figure 9 setting (λ = 7.5, fitted
//! lifecycle, N around the provisioning knee).
//!
//! The analytic percentiles come from `urs_core::response`: a tagged-customer
//! Laplace–Stieltjes transform inverted by two independent quadratures whose runtime
//! agreement is certified on every evaluation.  The simulated percentiles come from
//! independent replications of a simulator that shares nothing with the transform
//! machinery, summarised as 95% confidence intervals.  Agreement here therefore
//! validates the whole pipeline — QBD construction, stationary solve, transform
//! recursion and inversion — not just the inverter (which
//! `tests/lst_inversion_roundtrip.rs` covers in isolation).

use unreliable_servers::core::{ResponseAnalysis, ResponseOptions, SolverCache};
use unreliable_servers::dist::Exponential;
use unreliable_servers::sim::{BreakdownQueueSimulation, Replications, SimulationConfig};
use urs_bench::{figure5_lifecycle, smoke, system};

const FRACTIONS: [f64; 3] = [0.90, 0.95, 0.99];

#[test]
fn analytic_percentiles_fall_inside_simulated_intervals_for_figure9() {
    // Smoke mode trims to the single most-loaded (hence most sensitive) fleet size
    // and a shorter horizon; the full run covers the span of the paper's Figure 9.
    let (server_counts, warmup, horizon, replications): (&[usize], f64, f64, usize) =
        if smoke() { (&[10], 2_000.0, 15_000.0, 4) } else { (&[9, 11, 13], 8_000.0, 80_000.0, 6) };
    let lifecycle = figure5_lifecycle();
    let cache = SolverCache::shared();

    for &servers in server_counts {
        let config = system(servers, 7.5, lifecycle.clone());
        let analysis =
            ResponseAnalysis::with_cache(&config, ResponseOptions::default(), &cache).unwrap();
        // The percentiles are certified internally: each CDF evaluation ran both the
        // Euler and Talbot inversions and they agreed to the configured tolerance.
        let analytic = analysis.response_time_percentiles(&FRACTIONS).unwrap();

        let sim_config = SimulationConfig::builder(servers, 7.5)
            .service(Exponential::new(1.0).unwrap())
            .operative(lifecycle.operative().clone())
            .inoperative(lifecycle.inoperative().clone())
            .warmup(warmup)
            .horizon(horizon)
            .build()
            .unwrap();
        let intervals = Replications::new(replications, 2006)
            .run_percentiles(&BreakdownQueueSimulation::new(sim_config), &FRACTIONS)
            .unwrap();

        for (exact, ci) in analytic.iter().zip(&intervals) {
            // Three half-widths (with a small relative floor) keeps the test robust
            // against the ~1-in-20 misses of a strict 95% interval, matching the
            // convention of `tests/simulation_validation.rs`.
            let slack = 3.0 * ci.interval.half_width.max(0.02 * ci.interval.mean);
            assert!(
                (exact - ci.interval.mean).abs() < slack,
                "N = {servers}, P{:.0}: analytic {exact} vs simulated {} ± {}",
                100.0 * ci.fraction,
                ci.interval.mean,
                ci.interval.half_width,
            );
        }

        // The percentiles must be strictly ordered and bracket the analytic mean
        // response time the spectral expansion already provides.
        assert!(analytic[0] < analytic[1] && analytic[1] < analytic[2]);
        assert!(analysis.mean_response_time() < analytic[2]);
    }
}

#[test]
fn analytic_percentiles_need_no_simulation() {
    // The acceptance criterion of the feature: percentile queries are answered
    // purely analytically.  This test never constructs a simulator.
    let config = system(10, 7.5, figure5_lifecycle());
    let analysis = ResponseAnalysis::new(&config).unwrap();
    let p = analysis.response_time_percentiles(&FRACTIONS).unwrap();
    for (fraction, t) in FRACTIONS.iter().zip(&p) {
        let cdf = analysis.response_time_cdf(*t).unwrap();
        assert!(
            (cdf - fraction).abs() < 1e-6,
            "round trip failed: F({t}) = {cdf}, expected {fraction}"
        );
    }
}
